"""Tests for the Session's functional-execution memo and tolerant agreement."""

import pytest

from repro.api import Q, Session, col, values_agree
from repro.engine.cache import ExecutionCache
from repro.engine.plan import execute_query
from repro.ssb.queries import QUERIES


class TestCompareCacheSharing:
    def test_compare_executes_once_and_replays(self, tiny_ssb):
        session = Session(tiny_ssb)
        comparison = session.compare(QUERIES["q2.1"], engines=["cpu", "gpu", "coprocessor"])
        info = session.cache_info()
        assert info.misses == 1
        assert info.hits == 2
        assert info.size == 1
        assert comparison.consistent

    def test_cached_answers_equal_uncached(self, tiny_ssb):
        cached = Session(tiny_ssb).run(QUERIES["q2.1"], engine="cpu")
        uncached = Session(tiny_ssb, cache=False).run(QUERIES["q2.1"], engine="cpu")
        assert cached.value == uncached.value
        assert cached.simulated_ms == uncached.simulated_ms

    def test_replayed_results_are_isolated_copies(self, tiny_ssb):
        session = Session(tiny_ssb)
        first = session.run(QUERIES["q2.1"], engine="cpu")
        first.value[next(iter(first.value))] = -1.0  # corrupt one engine's view
        second = session.run(QUERIES["q2.1"], engine="gpu")
        assert -1.0 not in second.value.values()

    def test_repeated_run_hits(self, tiny_ssb):
        session = Session(tiny_ssb)
        session.run(QUERIES["q1.1"], engine="cpu")
        session.run(QUERIES["q1.1"], engine="cpu")
        assert session.cache_info().hits == 1

    def test_distinct_queries_do_not_collide(self, tiny_ssb):
        session = Session(tiny_ssb)
        a = session.run(QUERIES["q1.1"], engine="cpu")
        b = session.run(QUERIES["q1.2"], engine="cpu")
        assert session.cache_info() == (0, 2, 2, 64)
        assert a.value != b.value


class TestOptOutAndLifecycle:
    def test_session_level_opt_out(self, tiny_ssb):
        session = Session(tiny_ssb, cache=False)
        session.compare(QUERIES["q1.1"], engines=["cpu", "gpu"])
        assert session.cache_info() == (0, 0, 0, 0)

    def test_per_call_opt_out(self, tiny_ssb):
        session = Session(tiny_ssb)
        session.run(QUERIES["q1.1"], engine="cpu", cache=False)
        session.run(QUERIES["q1.1"], engine="cpu", cache=False)
        assert session.cache_info() == (0, 0, 0, 64)

    def test_clear_cache(self, tiny_ssb):
        session = Session(tiny_ssb)
        session.run(QUERIES["q1.1"], engine="cpu")
        session.clear_cache()
        assert session.cache_info() == (0, 0, 0, 64)

    def test_lru_eviction_bounds_size(self, tiny_ssb):
        session = Session(tiny_ssb, cache_size=2)
        for name in ("q1.1", "q1.2", "q1.3"):
            session.run(QUERIES[name], engine="cpu")
        assert session.cache_info().size == 2

    def test_tiny_cache_rejected(self, tiny_ssb):
        with pytest.raises(ValueError, match="maxsize"):
            Session(tiny_ssb, cache_size=0)

    def test_cache_ignores_foreign_databases(self, tiny_ssb, small_ssb):
        cache = ExecutionCache(tiny_ssb)
        value, _ = cache.fetch(small_ssb, QUERIES["q1.1"], execute_query)
        assert cache.info() == (0, 0, 0, 64)
        direct, _ = execute_query(small_ssb, QUERIES["q1.1"])
        assert value == direct

    def test_builder_queries_are_cacheable(self, tiny_ssb):
        session = Session(tiny_ssb)
        query = Q().where(col("lo_quantity") < 25).agg("count")
        session.run(query, engine="cpu")
        session.run(query, engine="gpu")
        assert session.cache_info().hits == 1


class TestTolerantAgreement:
    def test_identical_values_agree(self):
        assert values_agree(1.5, 1.5)
        assert values_agree({(1,): 2.0}, {(1,): 2.0})
        assert values_agree(None, None)

    def test_float_noise_within_tolerance_agrees(self):
        a = {(1993,): 42534836369.0}
        b = {(1993,): 42534836369.0 * (1 + 1e-12)}
        assert a != b  # exact equality would report spurious disagreement
        assert values_agree(a, b)
        assert values_agree(1.0 / 3.0, (1.0 - 2.0 / 3.0))

    def test_real_disagreement_detected(self):
        assert not values_agree({(1993,): 1.0}, {(1993,): 2.0})
        assert not values_agree({(1993,): 1.0}, {(1994,): 1.0})
        assert not values_agree(1.0, None)

    def test_avg_aggregates_consistent_across_engines(self, tiny_ssb):
        """The motivating case: avg answers must not spuriously disagree."""
        session = Session(tiny_ssb)
        query = (
            Q()
            .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
            .group_by("d_year")
            .agg("avg", "lo_revenue")
        )
        comparison = session.compare(query, engines=["cpu", "gpu", "coprocessor"])
        assert comparison.consistent
        assert all(row.agrees for row in comparison.rows())
