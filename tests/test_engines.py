"""Integration tests across the full-query engines."""

import pytest

from repro.engine import (
    CoprocessorEngine,
    CPUStandaloneEngine,
    GPUStandaloneEngine,
    HyperLikeEngine,
    MonetDBLikeEngine,
    OmnisciLikeEngine,
    execute_query,
)
from repro.analysis.scaling import scale_profile
from repro.ssb.queries import QUERIES, QUERY_ORDER

ALL_ENGINES = [
    CPUStandaloneEngine,
    GPUStandaloneEngine,
    CoprocessorEngine,
    HyperLikeEngine,
    MonetDBLikeEngine,
    OmnisciLikeEngine,
]


@pytest.fixture(scope="module")
def engines(tiny_ssb):
    return {cls.name: cls(tiny_ssb) for cls in ALL_ENGINES}


class TestCorrectness:
    @pytest.mark.parametrize("query_name", QUERY_ORDER)
    def test_all_engines_agree_on_every_query(self, engines, query_name):
        query = QUERIES[query_name]
        results = {name: engine.run(query) for name, engine in engines.items()}
        reference = results["standalone-cpu"].value
        for name, result in results.items():
            assert result.value == reference, f"{name} disagrees on {query_name}"
            assert result.query == query_name
            assert result.engine == name
            assert result.simulated_ms > 0

    def test_result_rows_property(self, engines):
        scalar = engines["standalone-cpu"].run(QUERIES["q1.1"])
        grouped = engines["standalone-cpu"].run(QUERIES["q2.1"])
        assert scalar.rows == 1
        assert grouped.rows == len(grouped.value)


class TestPerformanceShapeAtScale:
    """Simulated-time orderings the paper reports, checked on SF-20 profiles."""

    @pytest.fixture(scope="class")
    def scaled_profiles(self, tiny_ssb):
        profiles = {}
        for name in ("q1.1", "q2.1", "q3.1", "q4.1"):
            _, profile = execute_query(tiny_ssb, QUERIES[name])
            profiles[name] = scale_profile(profile, base_scale_factor=0.01, target_scale_factor=20.0)
        return profiles

    def test_gpu_beats_cpu_by_more_than_bandwidth_ratio_on_joins(self, tiny_ssb, scaled_profiles):
        cpu = CPUStandaloneEngine(tiny_ssb)
        gpu = GPUStandaloneEngine(tiny_ssb)
        for name in ("q2.1", "q3.1", "q4.1"):
            query = QUERIES[name]
            profile = scaled_profiles[name]
            ratio = cpu.simulate(query, profile).total_seconds / gpu.simulate(query, profile).total_seconds
            assert ratio > 10, f"{name}: expected a large GPU advantage, got {ratio:.1f}x"

    def test_coprocessor_slower_than_standalone_cpu(self, tiny_ssb, scaled_profiles):
        """Section 3.1: the coprocessor model loses to an efficient CPU engine.

        The paper's argument is per-scan-bound query (flight 1) and in the
        mean; for join-heavy queries whose CPU runtime is dominated by probe
        stalls the two can come close, so the assertion checks flight 1/2
        queries individually and the average over all sampled queries.
        """
        cpu = CPUStandaloneEngine(tiny_ssb)
        coprocessor = CoprocessorEngine(tiny_ssb)
        copro_total = 0.0
        cpu_total = 0.0
        for name, profile in scaled_profiles.items():
            query = QUERIES[name]
            copro_s = coprocessor.simulate(query, profile).total_seconds
            cpu_s = cpu.simulate(query, profile).total_seconds
            copro_total += copro_s
            cpu_total += cpu_s
            if name in ("q1.1", "q2.1"):
                assert copro_s > cpu_s
        assert copro_total > cpu_total

    def test_coprocessor_slower_than_standalone_gpu(self, tiny_ssb, scaled_profiles):
        gpu = GPUStandaloneEngine(tiny_ssb)
        coprocessor = CoprocessorEngine(tiny_ssb)
        for name, profile in scaled_profiles.items():
            query = QUERIES[name]
            assert coprocessor.simulate(query, profile).total_seconds > gpu.simulate(query, profile).total_seconds

    def test_standalone_cpu_not_slower_than_hyper(self, tiny_ssb, scaled_profiles):
        cpu = CPUStandaloneEngine(tiny_ssb)
        hyper = HyperLikeEngine(tiny_ssb)
        for name, profile in scaled_profiles.items():
            query = QUERIES[name]
            assert cpu.simulate(query, profile).total_seconds <= hyper.simulate(query, profile).total_seconds * 1.05

    def test_crystal_gpu_beats_omnisci(self, tiny_ssb, scaled_profiles):
        gpu = GPUStandaloneEngine(tiny_ssb)
        omnisci = OmnisciLikeEngine(tiny_ssb)
        for name, profile in scaled_profiles.items():
            query = QUERIES[name]
            ratio = omnisci.simulate(query, profile).total_seconds / gpu.simulate(query, profile).total_seconds
            assert ratio > 3, f"{name}: expected OmniSci-like to be much slower, got {ratio:.1f}x"

    def test_monetdb_slower_than_standalone_cpu(self, tiny_ssb, scaled_profiles):
        cpu = CPUStandaloneEngine(tiny_ssb)
        monetdb = MonetDBLikeEngine(tiny_ssb)
        for name, profile in scaled_profiles.items():
            query = QUERIES[name]
            assert monetdb.simulate(query, profile).total_seconds > cpu.simulate(query, profile).total_seconds

    def test_coprocessor_is_pcie_bound(self, tiny_ssb):
        coprocessor = CoprocessorEngine(tiny_ssb)
        result = coprocessor.run(QUERIES["q1.1"])
        assert result.stats["pcie_bound"] == 1.0
        assert result.traffic.pcie_bytes > 0


class TestQueryResultStats:
    def test_cpu_result_stats(self, tiny_ssb):
        result = CPUStandaloneEngine(tiny_ssb).run(QUERIES["q2.1"])
        assert result.stats["fact_rows"] == tiny_ssb["lineorder"].num_rows
        assert result.stats["groups"] == result.rows

    def test_time_breakdown_has_named_phases(self, tiny_ssb):
        result = GPUStandaloneEngine(tiny_ssb).run(QUERIES["q2.1"])
        components = result.time.components
        assert any(name.startswith("build.") for name in components)
        assert any(name.startswith("probe.") for name in components)
