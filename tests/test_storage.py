"""Tests for the columnar storage substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.memory import Device
from repro.storage import Column, Database, DictionaryEncoder, Table


class TestColumn:
    def test_basic_properties(self):
        column = Column("x", np.arange(10, dtype=np.int32))
        assert len(column) == 10
        assert column.itemsize == 4
        assert column.nbytes == 40
        assert column.min() == 0 and column.max() == 9
        assert column.distinct_count() == 10

    def test_rejects_multidimensional(self):
        with pytest.raises(ValueError):
            Column("x", np.zeros((2, 2)))

    def test_to_device_shares_data(self):
        column = Column("x", np.arange(4))
        moved = column.to_device(Device.GPU)
        assert moved.device is Device.GPU
        assert moved.values is column.values


class TestDictionaryEncoder:
    def test_encode_decode_round_trip(self):
        encoder = DictionaryEncoder.from_values(["ASIA", "AMERICA", "ASIA", "EUROPE"])
        codes = encoder.encode(["ASIA", "EUROPE", "AMERICA"])
        assert encoder.decode(codes) == ["ASIA", "EUROPE", "AMERICA"]
        assert len(encoder) == 3

    def test_codes_are_sorted_lexicographically(self):
        """Sorted code assignment keeps range predicates on encoded columns valid."""
        encoder = DictionaryEncoder.from_values(["MFGR#2228", "MFGR#2221", "MFGR#2225"])
        assert encoder.encode_value("MFGR#2221") < encoder.encode_value("MFGR#2225")
        assert encoder.encode_value("MFGR#2225") < encoder.encode_value("MFGR#2228")

    def test_unknown_value_raises(self):
        encoder = DictionaryEncoder.from_values(["A"])
        with pytest.raises(KeyError):
            encoder.encode_value("B")

    def test_contains_and_width(self):
        encoder = DictionaryEncoder.from_values([str(i) for i in range(300)])
        assert "5" in encoder
        assert encoder.width_bytes == 2

    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=50))
    def test_round_trip_property(self, values):
        encoder = DictionaryEncoder.from_values(values)
        assert encoder.decode(encoder.encode(values)) == [str(v) for v in values]


class TestTable:
    def _table(self):
        return Table.from_arrays("t", {"a": np.arange(5, dtype=np.int32), "b": np.ones(5, dtype=np.int32)})

    def test_from_arrays_and_access(self):
        table = self._table()
        assert table.num_rows == 5
        assert table.num_columns == 2
        assert "a" in table
        assert list(table["a"]) == [0, 1, 2, 3, 4]

    def test_rejects_mismatched_column(self):
        table = self._table()
        with pytest.raises(ValueError):
            table.add_column(Column("c", np.arange(3)))

    def test_missing_column_message(self):
        with pytest.raises(KeyError, match="available"):
            self._table().column("zzz")

    def test_encoded_column_and_predicate_rewrite(self):
        table = Table(name="supplier")
        table.add_encoded_column("s_region", ["ASIA", "AMERICA", "ASIA"])
        assert table.num_rows == 3
        code = table.encode_predicate_value("s_region", "ASIA")
        assert list(table["s_region"] == code) == [True, False, True]

    def test_encode_predicate_requires_dictionary(self):
        with pytest.raises(KeyError):
            self._table().encode_predicate_value("a", "x")

    def test_select_rows(self):
        table = self._table()
        subset = table.select_rows(np.array([0, 2]))
        assert subset.num_rows == 2
        assert list(subset["a"]) == [0, 2]

    def test_bytes_for(self):
        table = self._table()
        assert table.bytes_for(["a", "b"]) == table.nbytes == 40


class TestDatabase:
    def test_add_and_lookup(self):
        db = Database("test")
        db.add_table(Table.from_arrays("t", {"a": np.arange(3)}))
        assert "t" in db
        assert db["t"].num_rows == 3
        with pytest.raises(ValueError):
            db.add_table(Table.from_arrays("t", {"a": np.arange(3)}))
        with pytest.raises(KeyError):
            db.table("missing")

    def test_fits_on_device(self):
        db = Database("test")
        db.add_table(Table.from_arrays("t", {"a": np.zeros(1000, dtype=np.int32)}))
        assert db.fits_on_device(1 << 20)
        assert not db.fits_on_device(1000)
        with pytest.raises(ValueError):
            db.fits_on_device(0)

    def test_summary_mentions_tables(self):
        db = Database("test")
        db.add_table(Table.from_arrays("lineorder", {"a": np.arange(10)}))
        assert "lineorder" in db.summary()

    def test_to_device(self):
        db = Database("test")
        db.add_table(Table.from_arrays("t", {"a": np.arange(3)}))
        moved = db.to_device(Device.GPU)
        assert moved["t"].column("a").device is Device.GPU
