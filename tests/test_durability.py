"""Crash-consistent durability: WAL, checkpoints, and byte-identical recovery.

The headline suite is differential crash testing: a child process opens a
durable session over a deterministically generated SSB database, ingests
micro-batches until an armed fault plan kills it mid-append (``kill`` --
nothing of the in-flight record lands -- and ``torn`` -- half the record
lands, a power-cut tail), under both ``fork`` and ``spawn`` start methods.
The parent then reopens the directory with ``Session.open`` and asserts
the recovered version frontier is *byte-identical* to an uncrashed
reference session that ingested the same prefix: every column array,
dtype, dictionary, all 13 SSB query answers, and the standing-query
answers rebuilt over the recovered data.

Around it: WAL record codec round-trips, torn-tail truncation at every
corruption shape (short header, short payload, bad checksum, truncated
file), checkpoint validity rules (torn checkpoint skipped, orphaned
``.tmp`` swept), the recovery edge cases (zero-length WAL, checkpoint with
no WAL, WAL with no checkpoint, interleaved fact/dimension appends), a
property-style sweep of seeded truncation offsets (every crash point
recovers to *some* valid published prefix), the empty-append regression
(no record, no version bump, never a skip), and the serving-layer contract
(``QueryService.ingest`` acknowledges only after the durability point and
stamps the trace with the mode and fsync latency).

The session-scoped ``artifact_leak_guard`` fixture in ``conftest.py``
brackets this file too: every durability directory these tests touch must
end the run with no orphaned ``.tmp`` checkpoint files.
"""

import asyncio
import multiprocessing
import os
import shutil
import struct

import numpy as np
import pytest

from repro.api import Session
from repro.faults import (
    CHECKPOINT_WRITE,
    KILL_EXIT_CODE,
    WAL_APPEND,
    WAL_FSYNC,
    FaultPlan,
    FaultPoint,
    TransientFaultError,
)
from repro.service import QueryService
from repro.ssb import QUERIES, QUERY_ORDER, generate_lineorder_batch, generate_ssb
from repro.storage import (
    Column,
    Database,
    DurabilityConfig,
    DurabilityError,
    DurabilityManager,
    Table,
    WriteAheadLog,
)
from repro.storage.checkpoint import checkpoint_paths, parse_checkpoint
from repro.storage.wal import (
    WAL_NAME,
    decode_table_payload,
    encode_table_payload,
    frame_record,
    scan_records,
)

START_METHODS = ("fork", "spawn")
CRASH_MODES = ("kill", "torn")

#: The crashing child's workload: SF of the base db, per-batch rows, and
#: how many batches publish before the armed fault kills the append.
SF = 0.01
BASE_SEED = 7
BATCH_ROWS = 400
BATCHES_BEFORE_CRASH = 3

GUARD_S = 60.0


def run(coro):
    async def guarded():
        return await asyncio.wait_for(coro, timeout=GUARD_S)

    return asyncio.run(guarded())


def base_ssb():
    """The deterministic base database every process regenerates identically."""
    return generate_ssb(scale_factor=SF, seed=BASE_SEED)


def ingest_batches(session, db, count, *, start_seed=100):
    """Apply ``count`` deterministic lineorder batches through the session.

    Batch ``i`` is a function of the database state it lands on (orderkeys
    continue from the current row count) plus ``start_seed + i``, so two
    processes that apply the same prefix produce byte-identical tables.
    """
    for i in range(count):
        session.ingest("lineorder", generate_lineorder_batch(db, BATCH_ROWS, seed=start_seed + i))


def assert_tables_identical(db_a, db_b):
    """Every table byte-identical: version, columns, dtypes, dictionaries."""
    assert sorted(db_a.tables) == sorted(db_b.tables)
    for name in db_a.tables:
        ta, tb = db_a.table(name), db_b.table(name)
        assert ta.version == tb.version, (name, ta.version, tb.version)
        assert sorted(ta.columns) == sorted(tb.columns), name
        for cname, col in ta.columns.items():
            other = tb.columns[cname]
            assert col.values.dtype == other.values.dtype, (name, cname)
            assert col.values.tobytes() == other.values.tobytes(), (name, cname)
            assert col.encoding == other.encoding, (name, cname)
        assert sorted(ta.dictionaries) == sorted(tb.dictionaries), name
        for cname, enc in ta.dictionaries.items():
            assert list(enc.values) == list(tb.dictionaries[cname].values), (name, cname)


def tiny_db():
    """A two-table database small enough for exhaustive edge-case tests."""
    db = Database(name="tiny")
    fact = Table("fact")
    fact.add_column(Column(name="qty", values=np.arange(4, dtype=np.int32)))
    fact.add_encoded_column("tag", np.array(["x", "y", "x", "z"]), domain=["x", "y", "z"])
    db.add_table(fact)
    dim = Table("dim")
    dim.add_column(Column(name="key", values=np.arange(3, dtype=np.int32)))
    db.add_table(dim)
    return db


# ----------------------------------------------------------------------
# Children for the crash matrix (module level: picklable under spawn)
# ----------------------------------------------------------------------


def _crash_mid_append_child(dur_dir: str, mode: str, fsync: str) -> None:
    """Ingest until the armed ``wal.append`` fault crashes the process."""
    db = base_ssb()
    plan = FaultPlan([FaultPoint(site=WAL_APPEND, mode=mode, skip=BATCHES_BEFORE_CRASH)])
    session = Session(
        db, durability=DurabilityConfig(dir=dur_dir, fsync=fsync), faults=plan
    )
    # One more ingest than the skip count: the last one dies mid-append.
    ingest_batches(session, db, BATCHES_BEFORE_CRASH + 1)
    os._exit(0)  # unreachable: the plan fired first


def _crash_mid_checkpoint_child(dur_dir: str, mode: str) -> None:
    """Ingest, then die inside the checkpoint writer (orphaning its .tmp)."""
    db = base_ssb()
    plan = FaultPlan([FaultPoint(site=CHECKPOINT_WRITE, mode=mode)])
    session = Session(
        db, durability=DurabilityConfig(dir=dur_dir, fsync="always"), faults=plan
    )
    ingest_batches(session, db, BATCHES_BEFORE_CRASH)
    session.checkpoint()
    os._exit(0)  # unreachable


def _graceful_child(dur_dir: str, fsync: str, batches: int) -> None:
    """Ingest and exit cleanly (close() flushes), for cross-process reopens."""
    db = base_ssb()
    session = Session(db, durability=DurabilityConfig(dir=dur_dir, fsync=fsync))
    ingest_batches(session, db, batches)
    session.close()
    os._exit(0)


def _run_child(method: str, target, args) -> int:
    ctx = multiprocessing.get_context(method)
    proc = ctx.Process(target=target, args=args)
    proc.start()
    proc.join(GUARD_S)
    alive = proc.is_alive()
    if alive:  # pragma: no cover - hang guard
        proc.kill()
        proc.join()
    assert not alive, "crash child hung instead of exiting"
    return proc.exitcode


# ----------------------------------------------------------------------
# The differential crash matrix (the tentpole's acceptance test)
# ----------------------------------------------------------------------


class TestCrashRecoveryDifferential:
    @pytest.mark.parametrize("method", START_METHODS)
    @pytest.mark.parametrize("mode", CRASH_MODES)
    def test_kill_mid_append_recovers_byte_identical(self, tmp_path, method, mode):
        """The headline: crash mid-append, reopen, diff against uncrashed.

        The child dies on its fourth append (``kill``: nothing of the
        record lands; ``torn``: half a record lands).  Recovery must land
        exactly on the three-batch frontier -- tables, 13-query answers,
        and standing-query answers all byte-identical to a session that
        ingested those three batches and never crashed.
        """
        dur_dir = str(tmp_path / f"dur-{method}-{mode}")
        exitcode = _run_child(method, _crash_mid_append_child, (dur_dir, mode, "always"))
        assert exitcode == KILL_EXIT_CODE

        recovered_db = base_ssb()
        recovered = Session.open(recovered_db, durability=DurabilityConfig(dir=dur_dir))
        report = recovered.recovery
        assert report is not None and report.replayed_records == BATCHES_BEFORE_CRASH
        assert report.torn_tail == (mode == "torn")

        reference_db = base_ssb()
        reference = Session(reference_db)
        ingest_batches(reference, reference_db, BATCHES_BEFORE_CRASH)

        assert_tables_identical(recovered_db, reference_db)
        for name in QUERY_ORDER:
            assert recovered.run(QUERIES[name]).value == reference.run(QUERIES[name]).value, name
        ref_standing = reference.register_standing(QUERIES["q2.1"])
        rec_standing = recovered.register_standing(QUERIES["q2.1"])
        assert rec_standing.answer() == ref_standing.answer()
        recovered.close()
        reference.close()

    @pytest.mark.parametrize("mode", CRASH_MODES)
    def test_crash_mid_checkpoint_keeps_wal_authoritative(self, tmp_path, mode):
        """A checkpoint writer dying leaves a ``.tmp`` orphan, never data loss.

        The WAL still holds every record (truncation only happens after a
        checkpoint lands), so recovery replays the full log; the orphaned
        temp file is swept and reported.
        """
        dur_dir = str(tmp_path / f"ckpt-{mode}")
        exitcode = _run_child("fork", _crash_mid_checkpoint_child, (dur_dir, mode))
        assert exitcode == KILL_EXIT_CODE
        assert any(name.endswith(".tmp") for name in os.listdir(dur_dir))

        recovered_db = base_ssb()
        recovered = Session.open(recovered_db, durability=DurabilityConfig(dir=dur_dir))
        report = recovered.recovery
        assert report.removed_tmp, "recovery must sweep the orphaned checkpoint temp"
        assert report.checkpoint_seq is None  # the torn checkpoint never counts
        assert report.replayed_records == BATCHES_BEFORE_CRASH

        reference_db = base_ssb()
        reference = Session(reference_db)
        ingest_batches(reference, reference_db, BATCHES_BEFORE_CRASH)
        assert_tables_identical(recovered_db, reference_db)
        recovered.close()
        reference.close()

    @pytest.mark.parametrize("fsync", ("always", "batch", "off"))
    def test_graceful_close_reopens_under_every_policy(self, tmp_path, fsync):
        """close() makes every policy durable; reopen matches the reference."""
        dur_dir = str(tmp_path / f"graceful-{fsync}")
        exitcode = _run_child("fork", _graceful_child, (dur_dir, fsync, 2))
        assert exitcode == 0

        recovered_db = base_ssb()
        recovered = Session.open(recovered_db, durability=DurabilityConfig(dir=dur_dir))
        reference_db = base_ssb()
        reference = Session(reference_db)
        ingest_batches(reference, reference_db, 2)
        assert_tables_identical(recovered_db, reference_db)
        recovered.close()
        reference.close()


# ----------------------------------------------------------------------
# WAL record codec + torn-tail scanning
# ----------------------------------------------------------------------


class TestWalCodec:
    def test_payload_roundtrip_preserves_bytes_and_labels(self):
        arrays = {
            "a": np.array([1, 2, 3], dtype=np.int32),
            "b": np.array([1.5, -2.5, 3.25], dtype=np.float64),
        }
        meta = {"a": ("<i4", None), "b": ("<f8", None)}
        payload = encode_table_payload("t", 5, arrays, meta, {"a": ["x", "y"]})
        header, decoded = decode_table_payload(payload)
        assert header["table"] == "t" and header["version"] == 5 and header["rows"] == 3
        assert header["labels"] == {"a": ["x", "y"]}
        for name in arrays:
            assert decoded[name].dtype == arrays[name].dtype
            assert decoded[name].tobytes() == arrays[name].tobytes()
        decoded["a"][0] = 99  # decoded arrays are writable copies

    def test_scan_stops_cleanly_at_every_corruption_shape(self):
        records = [frame_record(f"payload-{i}".encode()) for i in range(3)]
        blob = b"".join(records)
        # Intact: every payload back, no tear.
        scan = scan_records(blob)
        assert len(scan.payloads) == 3 and not scan.torn and scan.good_end == len(blob)
        # Truncated payload: the partial record drops, the prefix survives.
        scan = scan_records(blob[:-3])
        assert len(scan.payloads) == 2 and scan.torn
        assert scan.good_end == len(records[0]) + len(records[1])
        # Short frame header (fewer than 8 bytes of the third frame).
        scan = scan_records(blob[: len(records[0]) + len(records[1]) + 5])
        assert len(scan.payloads) == 2 and scan.torn
        # Corrupt checksum: flip a payload byte.
        corrupt = bytearray(blob)
        corrupt[len(records[0]) + 9] ^= 0xFF
        scan = scan_records(bytes(corrupt))
        assert len(scan.payloads) == 1 and scan.torn
        # Absurd length field: treated as corruption, not an allocation.
        absurd = blob[: len(records[0])] + struct.pack("<II", (1 << 31) + 1, 0)
        scan = scan_records(absurd)
        assert len(scan.payloads) == 1 and scan.torn

    def test_wal_truncates_torn_tail_on_open(self, tmp_path):
        path = str(tmp_path / WAL_NAME)
        wal = WriteAheadLog(path, fsync="always")
        wal.append(b"first")
        wal.append(b"second")
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 2)
        reopened = WriteAheadLog(path, fsync="always")
        assert reopened.opened_torn and reopened.opened_dropped_bytes > 0
        scan = reopened.read_payloads()
        assert scan.payloads == (b"first",) and not scan.torn
        # The tail is *gone*, so appends land cleanly after the survivor.
        reopened.append(b"third")
        assert reopened.read_payloads().payloads == (b"first", b"third")
        reopened.close()

    def test_wal_restarts_on_unrecognized_header(self, tmp_path):
        path = str(tmp_path / WAL_NAME)
        with open(path, "wb") as handle:
            handle.write(b"not a wal at all")
        wal = WriteAheadLog(path, fsync="off")
        assert wal.opened_torn and wal.opened_dropped_bytes == len(b"not a wal at all")
        assert wal.read_payloads().payloads == ()
        wal.close()

    def test_batch_policy_fsyncs_on_schedule(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / WAL_NAME), fsync="batch", batch_every=3)
        for i in range(7):
            wal.append(f"r{i}".encode())
        assert wal.fsyncs == 2  # after records 3 and 6
        wal.sync()
        assert wal.fsyncs == 3
        off = WriteAheadLog(str(tmp_path / "off.log"), fsync="off")
        off.append(b"x")
        assert off.fsyncs == 0 and off.last_fsync_ms is None
        off.close()
        wal.close()


# ----------------------------------------------------------------------
# Recovery edge cases (satellite)
# ----------------------------------------------------------------------


class TestRecoveryEdgeCases:
    def test_fresh_directory_recovers_to_nothing(self, tmp_path):
        db = tiny_db()
        manager = DurabilityManager(db, DurabilityConfig(dir=str(tmp_path / "fresh")))
        report = manager.recover()
        assert not report.restored and report.versions == {"dim": 0, "fact": 0}
        manager.close()

    def test_zero_length_wal_is_not_fatal(self, tmp_path):
        dur_dir = tmp_path / "zero"
        dur_dir.mkdir()
        (dur_dir / WAL_NAME).write_bytes(b"")
        db = tiny_db()
        session = Session.open(db, durability=DurabilityConfig(dir=str(dur_dir)))
        assert session.recovery.replayed_records == 0
        assert db.table("fact").version == 0
        session.close()

    def test_checkpoint_with_no_wal(self, tmp_path):
        dur_dir = str(tmp_path / "ckpt-only")
        db = tiny_db()
        session = Session(db, durability=DurabilityConfig(dir=dur_dir))
        session.ingest("fact", {"qty": np.array([9], dtype=np.int32), "tag": np.array(["y"])})
        session.checkpoint()
        session.close()
        os.unlink(os.path.join(dur_dir, WAL_NAME))

        db2 = tiny_db()
        session2 = Session.open(db2, durability=DurabilityConfig(dir=dur_dir))
        assert session2.recovery.checkpoint_seq == 1
        assert session2.recovery.replayed_records == 0
        assert_tables_identical(db, db2)
        session2.close()

    def test_wal_with_no_checkpoint(self, tmp_path):
        dur_dir = str(tmp_path / "wal-only")
        db = tiny_db()
        session = Session(db, durability=DurabilityConfig(dir=dur_dir))
        session.ingest("fact", {"qty": np.array([9], dtype=np.int32), "tag": np.array(["y"])})
        session.close()
        assert not checkpoint_paths(dur_dir)

        db2 = tiny_db()
        session2 = Session.open(db2, durability=DurabilityConfig(dir=dur_dir))
        assert session2.recovery.checkpoint_seq is None
        assert session2.recovery.replayed_records == 1
        assert_tables_identical(db, db2)
        session2.close()

    def test_interleaved_fact_and_dimension_appends(self, tmp_path):
        """Per-table version order is preserved across an interleaved log."""
        dur_dir = str(tmp_path / "interleaved")
        db = tiny_db()
        session = Session(db, durability=DurabilityConfig(dir=dur_dir))
        session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        session.ingest("dim", {"key": np.array([10, 11], dtype=np.int32)})
        session.ingest("fact", {"qty": np.array([6, 7], dtype=np.int32), "tag": np.array(["z", "y"])})
        session.ingest("dim", {"key": np.array([12], dtype=np.int32)})
        assert db.table("fact").version == 2 and db.table("dim").version == 2
        session.close()

        db2 = tiny_db()
        session2 = Session.open(db2, durability=DurabilityConfig(dir=dur_dir))
        assert session2.recovery.replayed_records == 4
        assert_tables_identical(db, db2)
        session2.close()

    def test_checkpoint_then_tail_replay(self, tmp_path):
        """Recovery composes: newest checkpoint + the records after it."""
        dur_dir = str(tmp_path / "composed")
        db = tiny_db()
        session = Session(db, durability=DurabilityConfig(dir=dur_dir))
        session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        session.checkpoint()
        session.ingest("fact", {"qty": np.array([6], dtype=np.int32), "tag": np.array(["y"])})
        session.close()

        db2 = tiny_db()
        session2 = Session.open(db2, durability=DurabilityConfig(dir=dur_dir))
        assert session2.recovery.checkpoint_seq == 1
        assert session2.recovery.replayed_records == 1  # only the post-checkpoint record
        assert_tables_identical(db, db2)
        session2.close()

    def test_threshold_checkpointer_trips_and_truncates(self, tmp_path):
        dur_dir = str(tmp_path / "threshold")
        db = tiny_db()
        session = Session(
            db, durability=DurabilityConfig(dir=dur_dir, checkpoint_every=2, keep_checkpoints=1)
        )
        for i in range(5):
            session.ingest("fact", {"qty": np.array([i], dtype=np.int32), "tag": np.array(["x"])})
        manager = session.durability
        assert manager.checkpoints_written == 2  # after appends 2 and 4
        assert len(checkpoint_paths(dur_dir)) == 1  # pruned to keep_checkpoints
        # The log holds only the records past the newest checkpoint.
        assert len(manager.wal.read_payloads().payloads) == 1
        session.close()

        db2 = tiny_db()
        session2 = Session.open(db2, durability=DurabilityConfig(dir=dur_dir))
        assert_tables_identical(db, db2)
        session2.close()

    def test_recover_is_idempotent(self, tmp_path):
        dur_dir = str(tmp_path / "idem")
        db = tiny_db()
        session = Session(db, durability=DurabilityConfig(dir=dur_dir))
        session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        first = session.recover()
        assert first.skipped_records == 1 and first.replayed_records == 0
        again = session.recover()
        assert again.versions == first.versions
        assert db.table("fact").version == 1
        session.close()

    def test_torn_checkpoint_falls_back_to_older_generation(self, tmp_path):
        dur_dir = str(tmp_path / "fallback")
        db = tiny_db()
        session = Session(db, durability=DurabilityConfig(dir=dur_dir))
        session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        session.checkpoint()
        session.ingest("fact", {"qty": np.array([6], dtype=np.int32), "tag": np.array(["y"])})
        second = session.checkpoint()
        session.close()
        # Tear the newest checkpoint in half; parse must reject it.
        blob = open(second, "rb").read()
        with open(second, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert parse_checkpoint(second) is None

        db2 = tiny_db()
        session2 = Session.open(db2, durability=DurabilityConfig(dir=dur_dir))
        report = session2.recovery
        assert report.checkpoint_seq == 1 and report.invalid_checkpoints == 1
        # The WAL was truncated at the *second* checkpoint, whose records
        # are gone -- so recovery honestly lands on the older generation's
        # frontier.  This is the documented keep_checkpoints>=2 rationale.
        assert db2.table("fact").version == 1
        session2.close()

    def test_replay_gap_is_an_error_not_silent_data(self, tmp_path):
        table = tiny_db().table("fact")
        with pytest.raises(ValueError, match="replay gap"):
            table.replay_append(
                3, {"qty": np.array([1], dtype=np.int32), "tag": np.array([0], dtype=np.int32)}
            )

    def test_dictionary_drift_is_detected(self, tmp_path):
        dur_dir = str(tmp_path / "drift")
        db = tiny_db()
        session = Session(db, durability=DurabilityConfig(dir=dur_dir))
        session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        session.close()
        # A database whose tag dictionary disagrees with the logged labels.
        other = Database(name="tiny")
        fact = Table("fact")
        fact.add_column(Column(name="qty", values=np.arange(4, dtype=np.int32)))
        fact.add_encoded_column("tag", np.array(["a", "b", "a", "c"]), domain=["a", "b", "c"])
        other.add_table(fact)
        dim = Table("dim")
        dim.add_column(Column(name="key", values=np.arange(3, dtype=np.int32)))
        other.add_table(dim)
        with pytest.raises(DurabilityError, match="dictionary drift"):
            Session.open(other, durability=DurabilityConfig(dir=dur_dir))


class TestRandomTruncationProperty:
    def test_every_seeded_crash_point_recovers_to_a_valid_prefix(self, tmp_path):
        """Property: truncating the WAL anywhere yields some valid prefix.

        Record a log of K appends, then for a fan of seeded offsets copy
        the directory, truncate the copy's WAL at that offset, and recover:
        the result must always be byte-identical to the reference session
        that ingested exactly the surviving number of batches -- never an
        error, never a half-applied batch.
        """
        dur_dir = str(tmp_path / "recorded")
        appends = 6
        db = tiny_db()
        session = Session(db, durability=DurabilityConfig(dir=dur_dir))
        for i in range(appends):
            session.ingest(
                "fact",
                {
                    "qty": np.arange(i + 1, dtype=np.int32),
                    "tag": np.array(["x", "y", "z"] * ((i + 3) // 3))[: i + 1],
                },
            )
        session.close()
        wal_path = os.path.join(dur_dir, WAL_NAME)
        full_size = os.path.getsize(wal_path)

        # Reference prefixes: what the table looks like after j appends.
        def reference_after(count):
            ref = tiny_db()
            ref_session = Session(ref)
            for i in range(count):
                ref_session.ingest(
                    "fact",
                    {
                        "qty": np.arange(i + 1, dtype=np.int32),
                        "tag": np.array(["x", "y", "z"] * ((i + 3) // 3))[: i + 1],
                    },
                )
            return ref

        rng = np.random.default_rng(1234)
        offsets = sorted({int(off) for off in rng.integers(0, full_size + 1, size=24)})
        seen_versions = set()
        for offset in offsets:
            crash_dir = str(tmp_path / f"crash-{offset}")
            shutil.copytree(dur_dir, crash_dir)
            with open(os.path.join(crash_dir, WAL_NAME), "r+b") as handle:
                handle.truncate(offset)
            recovered = tiny_db()
            recovered_session = Session.open(
                recovered, durability=DurabilityConfig(dir=crash_dir)
            )
            version = recovered.table("fact").version
            assert 0 <= version <= appends
            seen_versions.add(version)
            assert_tables_identical(recovered, reference_after(version))
            recovered_session.close()
        assert len(seen_versions) > 2  # the offsets actually exercised prefixes


# ----------------------------------------------------------------------
# The empty-append regression (satellite)
# ----------------------------------------------------------------------


class TestEmptyAppendRegression:
    def test_empty_append_emits_no_record_and_no_version_bump(self, tmp_path):
        dur_dir = str(tmp_path / "empty")
        db = tiny_db()
        session = Session(db, durability=DurabilityConfig(dir=dur_dir))
        session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        version = db.table("fact").version
        empty = session.ingest(
            "fact",
            {"qty": np.array([], dtype=np.int32), "tag": np.array([], dtype="U1")},
        )
        assert empty == version  # no bump
        manager = session.durability
        assert manager.wal.records_logged == 1  # and no record either
        session.ingest("fact", {"qty": np.array([6], dtype=np.int32), "tag": np.array(["y"])})
        session.close()

        # Versions never skip across recovery: the log replays 1, 2 -- not
        # 1, 3 -- and lands exactly on the live session's frontier.
        db2 = tiny_db()
        session2 = Session.open(db2, durability=DurabilityConfig(dir=dur_dir))
        replayed = [
            decode_table_payload(payload)[0]["version"]
            for payload in session2.durability.wal.read_payloads().payloads
        ]
        assert replayed == [1, 2]
        assert db2.table("fact").version == 2
        assert_tables_identical(db, db2)
        session2.close()

    def test_duplicate_record_replay_is_a_noop(self, tmp_path):
        """A record at or below the table version skips -- never re-applies."""
        table = tiny_db().table("fact")
        batch = {
            "qty": np.array([9], dtype=np.int32),
            "tag": np.array([1], dtype=np.int32),  # already-encoded codes
        }
        assert table.replay_append(1, batch) is True
        rows = table.num_rows
        assert table.replay_append(1, batch) is False  # duplicate: no-op
        assert table.num_rows == rows and table.version == 1


# ----------------------------------------------------------------------
# Fault-site behaviour short of a crash
# ----------------------------------------------------------------------


class TestFaultSites:
    def test_raise_at_wal_append_aborts_publish(self, tmp_path):
        """A failed log write must leave nothing published (write-ahead)."""
        dur_dir = str(tmp_path / "abort")
        db = tiny_db()
        plan = FaultPlan([FaultPoint(site=WAL_APPEND, mode="raise")])
        session = Session(db, durability=DurabilityConfig(dir=dur_dir), faults=plan)
        with pytest.raises(TransientFaultError):
            session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        assert db.table("fact").version == 0  # nothing published
        # The plan's budget is spent: the next append goes through cleanly.
        session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        assert db.table("fact").version == 1
        session.close()

        db2 = tiny_db()
        session2 = Session.open(db2, durability=DurabilityConfig(dir=dur_dir))
        assert_tables_identical(db, db2)
        session2.close()

    def test_raise_at_fsync_aborts_publish_but_logs_survive_replay(self, tmp_path):
        """An fsync failure aborts the append; the orphan record replays as
        a duplicate-or-next and never corrupts the frontier."""
        dur_dir = str(tmp_path / "fsync-abort")
        db = tiny_db()
        plan = FaultPlan([FaultPoint(site=WAL_FSYNC, mode="raise")])
        session = Session(db, durability=DurabilityConfig(dir=dur_dir), faults=plan)
        with pytest.raises(TransientFaultError):
            session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        assert db.table("fact").version == 0
        # Retry with the identical batch: the new record carries the same
        # version, so recovery replays one and skips the other.
        session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        session.close()

        db2 = tiny_db()
        session2 = Session.open(db2, durability=DurabilityConfig(dir=dur_dir))
        assert session2.recovery.replayed_records == 1
        assert session2.recovery.skipped_records == 1
        assert_tables_identical(db, db2)
        session2.close()

    def test_latency_at_fsync_only_slows(self, tmp_path):
        dur_dir = str(tmp_path / "lat")
        db = tiny_db()
        plan = FaultPlan([FaultPoint(site=WAL_FSYNC, mode="latency", delay_s=0.01)])
        session = Session(db, durability=DurabilityConfig(dir=dur_dir), faults=plan)
        session.ingest("fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])})
        assert db.table("fact").version == 1
        assert session.durability.last_fsync_ms >= 10.0
        session.close()


# ----------------------------------------------------------------------
# Serving layer: ack-after-durability + trace stamping
# ----------------------------------------------------------------------


class TestServiceDurability:
    def test_ingest_trace_records_mode_and_fsync_latency(self, tmp_path):
        dur_dir = str(tmp_path / "svc")
        db = tiny_db()
        session = Session(db, durability=DurabilityConfig(dir=dur_dir, fsync="always"))

        async def scenario():
            async with QueryService(session) as service:
                return await service.ingest(
                    "fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])}
                )

        result = run(scenario())
        assert result.version == 1
        assert result.trace.durability == "always"
        assert result.trace.fsync_ms is not None and result.trace.fsync_ms >= 0.0
        record = result.trace.as_dict()
        assert record["durability"] == "always" and record["fsync_ms"] == result.trace.fsync_ms
        # Acknowledgement implies durability: a cold reopen sees the batch.
        session.close()
        db2 = tiny_db()
        session2 = Session.open(db2, durability=DurabilityConfig(dir=dur_dir))
        assert db2.table("fact").version == 1
        session2.close()

    def test_in_memory_session_traces_no_durability(self):
        db = tiny_db()
        session = Session(db)

        async def scenario():
            async with QueryService(session) as service:
                return await service.ingest(
                    "fact", {"qty": np.array([5], dtype=np.int32), "tag": np.array(["x"])}
                )

        result = run(scenario())
        assert result.trace.durability is None and result.trace.fsync_ms is None
        session.close()


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            DurabilityConfig(dir="")
        with pytest.raises(ValueError):
            DurabilityConfig(dir="d", fsync="sometimes")
        with pytest.raises(ValueError):
            DurabilityConfig(dir="d", batch_every=0)
        with pytest.raises(ValueError):
            DurabilityConfig(dir="d", checkpoint_every=0)
        with pytest.raises(ValueError):
            DurabilityConfig(dir="d", checkpoint_bytes=0)
        with pytest.raises(ValueError):
            DurabilityConfig(dir="d", keep_checkpoints=0)

    def test_session_without_durability_refuses_recover(self):
        session = Session(tiny_db())
        with pytest.raises(ValueError, match="no durability"):
            session.recover()
        with pytest.raises(ValueError, match="no durability"):
            session.checkpoint()
        assert session.durability is None and session.recovery is None
        session.close()
