"""Differential tests for the staged physical pipeline.

The physical pipeline (ScanFilter / BuildLookup / ProbeJoin / Aggregate) is
held byte-identical to the seed monolithic executor: same answers, same
profiles, stage by stage.  On top of that sit the shared-build artifact
cache (``Session.run_many(share_builds=True)``), the snowflake-capable plan
representation, and the context-local cache scopes.
"""

import pytest

from repro.api import Q, QueryValidationError, Session, col
from repro.engine.cache import (
    BuildArtifactCache,
    ExecutionCache,
    activate,
    activate_builds,
    active_build_cache,
    active_cache,
)
from repro.engine.physical import LogicalPlan, execute_physical, lower, lower_query, staged_builds
from repro.engine.plan import execute_query, execute_query_monolithic
from repro.engine.planner import JoinOrderPlanner
from repro.ssb.queries import QUERIES, FilterSpec, JoinSpec, SSBQuery

# ----------------------------------------------------------------------
# Byte-identical parity with the seed executor
# ----------------------------------------------------------------------


class TestPipelineParity:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_canonical_queries_byte_identical(self, tiny_ssb, name):
        """All 13 canonical SSB queries: same answer, same profile."""
        value_mono, profile_mono = execute_query_monolithic(tiny_ssb, QUERIES[name])
        value_phys, profile_phys = execute_query(tiny_ssb, QUERIES[name])
        assert value_phys == value_mono
        assert profile_phys == profile_mono
        assert repr(profile_phys) == repr(profile_mono)

    def test_or_tree_query_parity(self, tiny_ssb):
        query = (
            Q("lineorder")
            .where(col("lo_discount").between(1, 3) | (col("lo_quantity") > 45))
            .join("date", on=("lo_orderdate", "d_datekey"),
                  filters=[("d_year", "eq", 1993)], payload="d_year")
            .group_by("d_year")
            .agg("sum", "lo_extendedprice", "lo_discount", combine="mul")
            .build(tiny_ssb)
        )
        value_mono, profile_mono = execute_query_monolithic(tiny_ssb, query)
        value_phys, profile_phys = execute_query(tiny_ssb, query)
        assert value_phys == value_mono
        assert profile_phys == profile_mono

    def test_parity_under_reordered_joins(self, tiny_ssb):
        reordered = JoinOrderPlanner(tiny_ssb).reorder(QUERIES["q2.1"])
        value_mono, profile_mono = execute_query_monolithic(tiny_ssb, reordered)
        value_phys, profile_phys = execute_query(tiny_ssb, reordered)
        assert value_phys == value_mono
        assert profile_phys == profile_mono

    def test_unhashable_join_predicate_still_executes(self, tiny_ssb):
        """Hand-built specs holding list constants run (uncached) on both paths."""
        query = SSBQuery(
            name="unhashable",
            flight=0,
            fact_filters=(FilterSpec("lo_quantity", "lt", 25),),
            joins=(
                JoinSpec("date", "lo_orderdate", "d_datekey",
                         (FilterSpec("d_year", "in", [1997, 1998]),), payload="d_year"),
            ),
            group_by=("d_year",),
            aggregate=QUERIES["q2.1"].aggregate,
        )
        value_mono, profile_mono = execute_query_monolithic(tiny_ssb, query)
        value_phys, profile_phys = execute_query(tiny_ssb, query)
        assert value_phys == value_mono
        assert profile_phys == profile_mono
        # And through a Session batch: it runs, it just never shares.
        session = Session(tiny_ssb)
        [result] = session.run_many([query], engine="cpu", share_builds=True)
        assert result.value == value_mono
        assert session.cache_info("builds").size == 0

    def test_shared_builds_do_not_change_profiles(self, tiny_ssb):
        """A probe against a cached artifact emits the same profile slice."""
        cache = BuildArtifactCache(tiny_ssb)
        plan = lower_query(QUERIES["q2.1"])
        first = execute_physical(tiny_ssb, plan, build_cache=cache)
        second = execute_physical(tiny_ssb, plan, build_cache=cache)
        assert second[0] == first[0]
        assert second[1] == first[1]
        assert cache.hits > 0


# ----------------------------------------------------------------------
# Plan structure and lowering
# ----------------------------------------------------------------------


class TestLowering:
    def test_stages_mirror_the_query(self):
        plan = lower_query(QUERIES["q4.1"])
        assert len(plan.filters) == 0  # q4.1 has no fact filters
        assert len(plan.builds) == len(QUERIES["q4.1"].joins) == 4
        assert len(plan.probes) == 4
        operators = list(plan.operators())
        assert operators[-1] is plan.aggregate

    def test_one_scan_filter_per_conjunct(self):
        plan = lower_query(QUERIES["q1.1"])
        assert len(plan.filters) == 2  # discount band AND quantity bound

    def test_build_key_identity(self):
        plans = [lower_query(QUERIES[name]) for name in ("q2.1", "q2.2", "q2.3")]
        # All three flight-2 queries share the unfiltered date build ...
        date_keys = {
            build.key for plan in plans for build in plan.builds
            if build.join.dimension == "date"
        }
        assert len(date_keys) == 1
        # ... but their differently-filtered part builds stay distinct.
        part_keys = {
            build.key for plan in plans for build in plan.builds
            if build.join.dimension == "part"
        }
        assert len(part_keys) == 3

    def test_staged_builds_dedupes_across_batch(self):
        plans = [lower_query(query) for query in QUERIES.values()]
        builds = staged_builds(plans)
        keys = [build.key for build in builds]
        assert len(keys) == len(set(keys))
        assert len(keys) < sum(len(plan.builds) for plan in plans)

    def test_snowflake_chain_is_represented_but_not_lowered(self):
        """A dimension->dimension join survives normalization, fails lowering."""
        query = SSBQuery(
            name="snowflake",
            flight=0,
            fact_filters=(),
            joins=(
                JoinSpec("supplier", "lo_suppkey", "s_suppkey"),
                JoinSpec("date", "s_suppkey", "d_datekey", source="supplier"),
            ),
            group_by=(),
            aggregate=QUERIES["q1.1"].aggregate,
        )
        logical = LogicalPlan.from_query(query)
        assert logical.joins[1].source == "supplier"
        assert logical.join_depth(logical.joins[0]) == 0
        assert logical.join_depth(logical.joins[1]) == 1
        with pytest.raises(NotImplementedError, match="snowflake"):
            lower(logical)

    def test_unknown_join_source_rejected(self):
        query = SSBQuery(
            name="dangling",
            flight=0,
            fact_filters=(),
            joins=(JoinSpec("date", "x_key", "d_datekey", source="nowhere"),),
            group_by=(),
            aggregate=QUERIES["q1.1"].aggregate,
        )
        logical = LogicalPlan.from_query(query)
        with pytest.raises(ValueError, match="neither the fact table"):
            logical.join_depth(logical.joins[0])

    def test_builder_source_validation(self, tiny_ssb):
        base = Q("lineorder", db=tiny_ssb).agg("count")
        with pytest.raises(QueryValidationError, match="hangs off"):
            base.join("date", on=("s_suppkey", "d_datekey"), source="supplier")
        chained = (
            base.join("supplier", on=("lo_suppkey", "s_suppkey"))
            .join("date", on=("s_suppkey", "d_datekey"), source="supplier")
        )
        query = chained.build(tiny_ssb)
        assert query.joins[1].source == "supplier"
        with pytest.raises(NotImplementedError, match="snowflake"):
            execute_query(tiny_ssb, query)


# ----------------------------------------------------------------------
# Shared builds under Session.run_many
# ----------------------------------------------------------------------


class TestSharedBuilds:
    def test_each_distinct_build_constructed_exactly_once(self, tiny_ssb):
        queries = [QUERIES[name] for name in sorted(QUERIES)]
        session = Session(tiny_ssb)
        batched = session.run_many(queries, engine="cpu", share_builds=True)

        distinct = {b.key for q in queries for b in lower_query(q).builds}
        total_joins = sum(len(q.joins) for q in queries)
        info = session.cache_info("builds")
        assert info.misses == len(distinct)  # one construction per distinct build
        assert info.hits == total_joins      # every probe-side fetch shared
        assert info.size == len(distinct)

        serial = Session(tiny_ssb).run_many(queries, engine="cpu")
        for batch_result, serial_result in zip(batched, serial):
            assert batch_result.value == serial_result.value
            assert batch_result.simulated_ms == serial_result.simulated_ms

    def test_repeated_batches_keep_sharing(self, tiny_ssb):
        session = Session(tiny_ssb, cache=False)  # isolate the build cache
        queries = [QUERIES["q2.1"], QUERIES["q2.2"]]
        session.run_many(queries, engine="cpu", share_builds=True)
        misses_after_first = session.cache_info("builds").misses
        session.run_many(queries, engine="cpu", share_builds=True)
        assert session.cache_info("builds").misses == misses_after_first

    def test_small_build_cache_grows_to_fit_the_batch(self, tiny_ssb):
        """The exactly-once guarantee survives an undersized LRU."""
        queries = [QUERIES[name] for name in sorted(QUERIES)]
        session = Session(tiny_ssb, build_cache_size=1)
        session.run_many(queries, engine="cpu", share_builds=True)
        distinct = {b.key for q in queries for b in lower_query(q).builds}
        info = session.cache_info("builds")
        assert info.misses == len(distinct)
        assert info.maxsize >= len(distinct)

    def test_memoized_queries_skip_prebuild(self, tiny_ssb):
        """Replayed queries never probe, so their builds are not constructed."""
        session = Session(tiny_ssb)
        session.run(QUERIES["q2.1"], engine="cpu")  # memoize the whole pass
        session.run_many([QUERIES["q2.1"]], engine="cpu", share_builds=True)
        assert session.cache_info("builds") == (0, 0, 0, 128)

    def test_bad_engine_fails_before_building(self, tiny_ssb):
        session = Session(tiny_ssb)
        with pytest.raises(KeyError, match="unknown engine"):
            session.run_many([QUERIES["q2.1"]], engine="gpx", share_builds=True)
        assert session.cache_info("builds") == (0, 0, 0, 128)

    def test_serial_run_many_untouched(self, tiny_ssb):
        session = Session(tiny_ssb)
        session.run_many([QUERIES["q2.1"]], engine="cpu")
        assert session.cache_info("builds") == (0, 0, 0, 128)

    def test_clear_cache_resets_build_counters(self, tiny_ssb):
        session = Session(tiny_ssb)
        session.run_many([QUERIES["q1.1"]], engine="cpu", share_builds=True)
        assert session.cache_info("builds").size > 0
        session.clear_cache()
        assert session.cache_info("builds") == (0, 0, 0, 128)

    def test_unknown_cache_name_rejected(self, tiny_ssb):
        with pytest.raises(ValueError, match="unknown cache"):
            Session(tiny_ssb).cache_info("bogus")

    def test_artifacts_are_immutable(self, tiny_ssb):
        cache = BuildArtifactCache(tiny_ssb)
        plan = lower_query(QUERIES["q2.1"])
        execute_physical(tiny_ssb, plan, build_cache=cache)
        artifact = next(iter(cache._entries.values()))
        with pytest.raises(ValueError):
            artifact.lookup[0] = 99
        with pytest.raises(ValueError):
            artifact.present[0] = True


class TestBuildArtifactCacheUnit:
    def test_ignores_foreign_database(self, tiny_ssb, small_ssb):
        cache = BuildArtifactCache(tiny_ssb)
        build = lower_query(QUERIES["q1.1"]).builds[0]
        cache.fetch(small_ssb, build.key, lambda: build.build(small_ssb))
        assert cache.info() == (0, 0, 0, 128)

    def test_lru_eviction(self, tiny_ssb):
        cache = BuildArtifactCache(tiny_ssb, maxsize=1)
        builds = [b for name in ("q2.1", "q3.1") for b in lower_query(QUERIES[name]).builds]
        for build in builds:
            cache.fetch(tiny_ssb, build.key, lambda: build.build(tiny_ssb))
        assert len(cache) == 1

    def test_tiny_maxsize_rejected(self, tiny_ssb):
        with pytest.raises(ValueError, match="maxsize"):
            BuildArtifactCache(tiny_ssb, maxsize=0)

    def test_unhashable_key_falls_through(self, tiny_ssb):
        cache = BuildArtifactCache(tiny_ssb)
        sentinel = object()
        assert cache.fetch(tiny_ssb, ["not", "hashable"], lambda: sentinel) is sentinel
        assert cache.info() == (0, 0, 0, 128)


# ----------------------------------------------------------------------
# Context-local cache scopes (the ContextVar satellite)
# ----------------------------------------------------------------------


class TestContextScopes:
    def test_nested_activation_restores_previous(self, tiny_ssb):
        outer = ExecutionCache(tiny_ssb)
        inner = ExecutionCache(tiny_ssb)
        assert active_cache() is None
        with activate(outer):
            assert active_cache() is outer
            with activate(inner):
                assert active_cache() is inner
            assert active_cache() is outer
        assert active_cache() is None

    def test_nested_build_scopes(self, tiny_ssb):
        outer = BuildArtifactCache(tiny_ssb)
        inner = BuildArtifactCache(tiny_ssb)
        with activate_builds(outer):
            with activate_builds(inner):
                assert active_build_cache() is inner
            assert active_build_cache() is outer
        assert active_build_cache() is None

    def test_threads_do_not_clobber_each_other(self, tiny_ssb):
        import threading

        observed = {}
        ready = threading.Barrier(2)

        def worker(name):
            cache = ExecutionCache(tiny_ssb)
            with activate(cache):
                ready.wait(timeout=5)
                observed[name] = active_cache() is cache

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert observed == {0: True, 1: True}


# ----------------------------------------------------------------------
# Filter-stage profile slices (the OR-pushdown satellite)
# ----------------------------------------------------------------------


class TestFilterStages:
    def test_conjunctive_query_records_fused_stages(self, tiny_ssb):
        _, profile = execute_query(tiny_ssb, QUERIES["q1.1"])
        assert len(profile.filter_stages) == 2
        assert profile.filter_or_branches() == 0
        assert profile.filter_leaf_count() == 2
        first, second = profile.filter_stages
        assert first.rows_in == profile.fact_rows
        assert second.rows_in == first.rows_out
        assert second.rows_out / profile.fact_rows == pytest.approx(
            profile.fact_filter_selectivity
        )

    def test_or_tree_records_branches(self, tiny_ssb):
        query = (
            Q("lineorder")
            .where((col("lo_discount") == 1) | (col("lo_discount") == 2) | (col("lo_quantity") < 10))
            .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
            .group_by("d_year")
            .agg("count")
            .build(tiny_ssb)
        )
        _, profile = execute_query(tiny_ssb, query)
        assert len(profile.filter_stages) == 1
        stage = profile.filter_stages[0]
        assert stage.leaf_count == 3
        assert stage.or_branches == 2
        assert stage.columns == ("lo_discount", "lo_quantity")

    def test_branchy_or_costs_more_on_branch_sensitive_engines(self, tiny_ssb):
        session = Session(tiny_ssb)

        def query(pred):
            return (
                Q("lineorder").where(pred)
                .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
                .group_by("d_year")
                .agg("sum", "lo_revenue")
            )

        band = query(col("lo_discount").between(1, 3))
        branchy = query(
            (col("lo_discount") == 1) | (col("lo_discount") == 2) | (col("lo_discount") == 3)
        )
        for engine in ("hyper", "monetdb", "omnisci"):
            fused = session.run(band, engine=engine)
            disjunctive = session.run(branchy, engine=engine)
            assert disjunctive.value == fused.value
            assert disjunctive.simulated_ms > fused.simulated_ms, engine
        # The fused single-pass engines shrug: predicated lanes hide behind
        # the streaming scan (the Section 3.3 asymmetry).
        for engine in ("cpu", "gpu"):
            fused = session.run(band, engine=engine)
            disjunctive = session.run(branchy, engine=engine)
            assert disjunctive.value == fused.value
            assert disjunctive.simulated_ms <= fused.simulated_ms * 1.5, engine
