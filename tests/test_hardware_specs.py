"""Tests for the hardware specification layer (Table 2 presets included)."""

import pytest

from repro.hardware.presets import (
    AWS_P3_2XLARGE,
    AWS_R5_2XLARGE,
    DEFAULT_PCIE,
    INTEL_I7_6900,
    NVIDIA_V100,
    PAPER_PLATFORM,
    bandwidth_ratio,
)
from repro.hardware.specs import GB, KB, MB, CacheLevelSpec, CPUSpec, GPUSpec


class TestCacheLevelSpec:
    def test_valid_level(self):
        level = CacheLevelSpec(name="L1", capacity_bytes=32 * KB, line_bytes=64)
        assert level.num_lines == 512

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            CacheLevelSpec(name="L1", capacity_bytes=0)

    def test_rejects_capacity_not_multiple_of_line(self):
        with pytest.raises(ValueError):
            CacheLevelSpec(name="L1", capacity_bytes=100, line_bytes=64)


class TestTable2Presets:
    """The presets must match Table 2 of the paper."""

    def test_cpu_core_count_and_smt(self):
        assert INTEL_I7_6900.cores == 8
        assert INTEL_I7_6900.total_threads == 16

    def test_cpu_bandwidths(self):
        assert INTEL_I7_6900.dram_read_bandwidth == pytest.approx(53e9)
        assert INTEL_I7_6900.dram_write_bandwidth == pytest.approx(55e9)

    def test_cpu_cache_sizes(self):
        assert INTEL_I7_6900.cache_named("L1").capacity_bytes == 32 * KB
        assert INTEL_I7_6900.cache_named("L2").capacity_bytes == 256 * KB
        assert INTEL_I7_6900.cache_named("L3").capacity_bytes == 20 * MB

    def test_cpu_l3_bandwidth(self):
        assert INTEL_I7_6900.cache_named("L3").bandwidth_bytes_per_s == pytest.approx(157e9)

    def test_cpu_simd_lanes(self):
        assert INTEL_I7_6900.simd_lanes_32bit == 8  # AVX2

    def test_gpu_memory(self):
        assert NVIDIA_V100.global_capacity_bytes == 32 * GB
        assert NVIDIA_V100.global_read_bandwidth == pytest.approx(880e9)

    def test_gpu_cache_sizes_and_bandwidths(self):
        assert NVIDIA_V100.l2_capacity_bytes == 6 * MB
        assert NVIDIA_V100.l1_capacity_per_sm_bytes == 16 * KB
        assert NVIDIA_V100.l2_bandwidth == pytest.approx(2.2e12)
        assert NVIDIA_V100.l1_bandwidth == pytest.approx(10.7e12)

    def test_gpu_core_count_order_of_magnitude(self):
        assert NVIDIA_V100.total_cores == 5120

    def test_bandwidth_ratio_matches_paper(self):
        # The paper quotes roughly 16.2x; 880/53 is ~16.6.
        assert 16.0 <= bandwidth_ratio() <= 17.0
        assert PAPER_PLATFORM.bandwidth_ratio == pytest.approx(bandwidth_ratio())

    def test_pcie_slower_than_cpu_dram(self):
        assert DEFAULT_PCIE < INTEL_I7_6900.dram_read_bandwidth

    def test_cache_lookup_unknown_level(self):
        with pytest.raises(KeyError):
            INTEL_I7_6900.cache_named("L4")


class TestGPUOccupancy:
    def test_shared_memory_per_thread_is_about_24_ints(self):
        # The paper: ~24 4-byte values per thread at full occupancy.
        per_thread_ints = NVIDIA_V100.shared_memory_per_thread_bytes / 4
        assert 10 <= per_thread_ints <= 32

    def test_full_occupancy_small_blocks(self):
        assert NVIDIA_V100.occupancy(128, shared_bytes_per_block=4096, registers_per_thread=32) == 1.0

    def test_occupancy_limited_by_shared_memory(self):
        occ = NVIDIA_V100.occupancy(128, shared_bytes_per_block=48 * 1024, registers_per_thread=32)
        assert occ < 1.0

    def test_occupancy_limited_by_registers(self):
        occ = NVIDIA_V100.occupancy(1024, shared_bytes_per_block=0, registers_per_thread=128)
        assert occ < 1.0

    def test_occupancy_rejects_bad_block(self):
        with pytest.raises(ValueError):
            NVIDIA_V100.occupancy_limit_blocks(0)

    def test_blocks_per_sm_decrease_with_block_size(self):
        small = NVIDIA_V100.occupancy_limit_blocks(128)
        large = NVIDIA_V100.occupancy_limit_blocks(1024)
        assert small > large


class TestSpecValidation:
    def test_cpu_requires_cores(self):
        with pytest.raises(ValueError):
            CPUSpec(
                model="bad", cores=0, threads_per_core=1, frequency_hz=1e9, simd_width_bits=128,
                dram_capacity_bytes=GB, dram_read_bandwidth=1e9, dram_write_bandwidth=1e9,
                caches=(CacheLevelSpec("L1", 32 * KB),),
            )

    def test_gpu_requires_warp_multiple(self):
        with pytest.raises(ValueError):
            GPUSpec(
                model="bad", num_sms=1, cores_per_sm=64, warp_size=32, max_threads_per_sm=100,
                max_warps_per_sm=4, max_thread_blocks_per_sm=4, registers_per_sm=1024,
                shared_memory_per_sm_bytes=KB, frequency_hz=1e9, global_capacity_bytes=GB,
                global_read_bandwidth=1e9, global_write_bandwidth=1e9,
                global_access_granularity_bytes=128, l2_capacity_bytes=MB, l2_bandwidth=1e10,
                l1_capacity_per_sm_bytes=KB, l1_bandwidth=1e11,
            )


class TestPricing:
    def test_table3_rent_ratio_about_six(self):
        ratio = AWS_P3_2XLARGE.rent_usd_per_hour / AWS_R5_2XLARGE.rent_usd_per_hour
        assert 5.5 <= ratio <= 6.5

    def test_purchase_mid_point(self):
        assert AWS_R5_2XLARGE.purchase_usd_mid == pytest.approx(3500.0)
