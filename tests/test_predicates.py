"""Tests for the boolean predicate algebra (AND/OR/NOT expression trees).

Covers the tree nodes themselves, the builder DSL (``col`` comparisons
composed with ``&``/``|``/``~``), property-style checks of
``evaluate_pred`` against brute-force NumPy masks on generated data, the
end-to-end path through every engine, and the profile rule that each
referenced filter column is charged exactly once per query.
"""

import numpy as np
import pytest

from repro.api import Q, QueryValidationError, Session, available_engines, col
from repro.engine.expr import evaluate_filter, evaluate_pred
from repro.engine.plan import execute_query
from repro.ssb.queries import (
    QUERIES,
    And,
    FilterSpec,
    Leaf,
    Not,
    Or,
    as_pred,
    conjuncts,
)
from repro.storage import Table


class TestPredAlgebra:
    def test_operators_build_trees(self):
        a = FilterSpec("x", "lt", 3)
        b = FilterSpec("y", "ge", 5)
        assert a & b == And(Leaf(a), Leaf(b))
        assert a | b == Or(Leaf(a), Leaf(b))
        assert ~a == Not(Leaf(a))

    def test_and_or_flatten_associatively(self):
        a, b, c = (Leaf(FilterSpec(name, "eq", 1)) for name in "abc")
        assert (a & b) & c == And(a, b, c)
        assert a | (b | c) == Or(a, b, c)
        # Mixed operators keep their structure.
        assert ((a & b) | c) == Or(And(a, b), c)

    def test_as_pred_normalizes_legacy_shapes(self):
        spec = FilterSpec("x", "eq", 1)
        assert as_pred(spec) == Leaf(spec)
        assert as_pred((spec,)) == And(Leaf(spec))
        assert as_pred(()) == And()
        tree = Or(Leaf(spec))
        assert as_pred(tree) is tree
        with pytest.raises(TypeError):
            as_pred("x = 1")

    def test_conjuncts_split_only_top_level_and(self):
        a, b = Leaf(FilterSpec("a", "eq", 1)), Leaf(FilterSpec("b", "eq", 2))
        assert conjuncts(And(a, b)) == (a, b)
        assert conjuncts(Or(a, b)) == (Or(a, b),)
        assert conjuncts((FilterSpec("a", "eq", 1),)) == (a,)

    def test_columns_are_distinct_and_ordered(self):
        tree = Or(
            Leaf(FilterSpec("x", "lt", 1)),
            And(Leaf(FilterSpec("y", "gt", 2)), Leaf(FilterSpec("x", "gt", 9))),
        )
        assert tree.columns() == ("x", "y")
        assert [spec.column for spec in tree.leaves()] == ["x", "y", "x"]

    def test_trees_are_hashable_and_str_renders(self):
        tree = ~(col("x") < 3) & col("region").eq("ASIA")
        assert hash(tree) == hash(~(col("x") < 3) & col("region").eq("ASIA"))
        text = str(tree)
        assert "NOT" in text and "AND" in text and "'ASIA'" in text

    def test_map_leaves_preserves_shape(self):
        tree = Or(Leaf(FilterSpec("x", "lt", 1)), Not(Leaf(FilterSpec("y", "eq", 2))))
        mapped = tree.map_leaves(lambda s: FilterSpec(s.column, s.op, s.value, encoded=True))
        assert isinstance(mapped, Or) and isinstance(mapped.children[1], Not)
        assert all(spec.encoded for spec in mapped.leaves())


class TestColumnDSL:
    def test_comparisons_produce_leaves(self):
        assert (col("x") < 3) == Leaf(FilterSpec("x", "lt", 3))
        assert (col("x") <= 3) == Leaf(FilterSpec("x", "le", 3))
        assert (col("x") > 3) == Leaf(FilterSpec("x", "gt", 3))
        assert (col("x") >= 3) == Leaf(FilterSpec("x", "ge", 3))
        assert col("x").eq(3) == Leaf(FilterSpec("x", "eq", 3))
        assert col("x").ne(3) == Leaf(FilterSpec("x", "ne", 3))
        assert col("x").between(1, 3) == Leaf(FilterSpec("x", "between", (1, 3)))
        assert col("c").isin("A", "B") == Leaf(FilterSpec("c", "in", ("A", "B")))
        assert col("c").isin(["A", "B"]) == Leaf(FilterSpec("c", "in", ("A", "B")))

    def test_dsl_validates_eagerly(self):
        with pytest.raises(QueryValidationError, match="unknown filter operator"):
            col("x")._leaf("like", "abc")
        with pytest.raises(QueryValidationError, match="non-empty column name"):
            col("")

    def test_where_rejects_bare_column(self):
        with pytest.raises(QueryValidationError, match="bare column reference"):
            Q().where(col("lo_quantity"))

    def test_column_to_column_comparison_rejected(self):
        """col-vs-col would silently select every row; it must raise instead."""
        with pytest.raises(QueryValidationError, match="column-to-column"):
            col("lo_quantity").eq(col("lo_discount"))
        with pytest.raises(QueryValidationError, match="column-to-column"):
            col("lo_quantity") < col("lo_discount")
        with pytest.raises(QueryValidationError, match="column-to-column"):
            Q().filter("lo_quantity", "eq", col("lo_discount"))
        with pytest.raises(QueryValidationError, match="column-to-column"):
            col("lo_quantity").isin(1, col("lo_discount"))

    def test_where_needs_a_predicate(self):
        with pytest.raises(QueryValidationError, match="at least one"):
            Q().where()

    def test_filter_is_sugar_for_where(self):
        via_filter = Q().filter("lo_quantity", "lt", 25).agg("count").build()
        via_where = Q().where(("lo_quantity", "lt", 25)).agg("count").build()
        assert via_filter.fact_filters == via_where.fact_filters == (
            FilterSpec("lo_quantity", "lt", 25),
        )

    def test_pure_conjunctions_emit_legacy_tuples(self):
        query = (
            Q()
            .where(col("lo_quantity") < 25)
            .filter("lo_discount", "between", (1, 3))
            .agg("count")
            .build()
        )
        assert isinstance(query.fact_filters, tuple)
        assert [s.column for s in query.fact_filters] == ["lo_quantity", "lo_discount"]

    def test_trees_survive_build_and_validation(self, tiny_ssb):
        query = (
            Q()
            .where((col("lo_quantity") < 25) | ~col("lo_discount").between(1, 3))
            .agg("count")
            .build(tiny_ssb)
        )
        assert isinstance(query.fact_filters, Or)

    def test_build_auto_encodes_strings_inside_trees(self, tiny_ssb):
        query = (
            Q()
            .join(
                "supplier",
                on=("lo_suppkey", "s_suppkey"),
                filters=col("s_region").eq("ASIA") | col("s_region").eq("AMERICA"),
            )
            .agg("count")
            .build(tiny_ssb)
        )
        assert all(spec.encoded for spec in query.joins[0].predicate.leaves())

    def test_build_rejects_unknown_columns_inside_trees(self, tiny_ssb):
        builder = Q().where((col("lo_quantity") < 25) | (col("lo_nope") > 1)).agg("count")
        with pytest.raises(QueryValidationError, match="lo_nope"):
            builder.build(tiny_ssb)

    def test_build_rejects_unknown_dictionary_values_inside_trees(self, tiny_ssb):
        builder = Q().join(
            "supplier",
            on=("lo_suppkey", "s_suppkey"),
            filters=~col("s_region").eq("ATLANTIS"),
        ).agg("count")
        with pytest.raises(QueryValidationError, match="ATLANTIS"):
            builder.build(tiny_ssb)


def _reference_masks(table, rng, depth=0):
    """Generate (pred, reference_mask) pairs by random recursive descent."""
    x = table["x"]
    y = table["y"]
    choice = rng.integers(0, 7 if depth < 3 else 4)
    if choice == 0:
        c = int(rng.integers(-5, 15))
        return (col("x") < c), x < c
    if choice == 1:
        lo = int(rng.integers(-5, 10))
        hi = lo + int(rng.integers(0, 8))
        return col("y").between(lo, hi), (y >= lo) & (y <= hi)
    if choice == 2:
        values = tuple(int(v) for v in rng.integers(-5, 15, size=3))
        return col("x").isin(values), np.isin(x, np.asarray(values))
    if choice == 3:
        c = int(rng.integers(-5, 15))
        return col("y").ne(c), y != c
    if choice == 4:
        child, mask = _reference_masks(table, rng, depth + 1)
        return ~child, ~mask
    left, left_mask = _reference_masks(table, rng, depth + 1)
    right, right_mask = _reference_masks(table, rng, depth + 1)
    if choice == 5:
        return left & right, left_mask & right_mask
    return left | right, left_mask | right_mask


class TestEvaluatePredProperties:
    """Property-style: random trees equal brute-force NumPy evaluation."""

    @pytest.fixture(scope="class")
    def table(self):
        gen = np.random.default_rng(2024)
        return Table.from_arrays(
            "t",
            {
                "x": gen.integers(-5, 15, size=500),
                "y": gen.integers(-5, 15, size=500),
            },
        )

    def test_random_trees_match_numpy(self, table):
        rng = np.random.default_rng(7)
        nontrivial = 0
        for _ in range(60):
            pred, expected = _reference_masks(table, rng)
            actual = evaluate_pred(table, pred)
            np.testing.assert_array_equal(actual, expected)
            if 0 < expected.sum() < expected.size:
                nontrivial += 1
        assert nontrivial >= 20  # the generator is actually exercising selectivity

    def test_de_morgan(self, table):
        a = col("x") < 5
        b = col("y") > 2
        np.testing.assert_array_equal(
            evaluate_pred(table, ~(a & b)), evaluate_pred(table, ~a | ~b)
        )
        np.testing.assert_array_equal(
            evaluate_pred(table, ~(a | b)), evaluate_pred(table, ~a & ~b)
        )

    def test_empty_junction_identities(self, table):
        assert evaluate_pred(table, And()).all()
        assert not evaluate_pred(table, Or()).any()

    def test_double_negation(self, table):
        a = col("x") < 5
        np.testing.assert_array_equal(evaluate_pred(table, ~~a), evaluate_pred(table, a))

    def test_leaf_equals_evaluate_filter(self, table):
        spec = FilterSpec("x", "between", (0, 9))
        np.testing.assert_array_equal(
            evaluate_pred(table, Leaf(spec)), evaluate_filter(table, spec)
        )


class TestEnginesOnTrees:
    """The acceptance query: a disjunctive q1.1 variant on every engine."""

    @pytest.fixture(scope="class")
    def disjunctive_q11(self, tiny_ssb):
        return (
            Q("lineorder")
            .where(col("lo_discount").between(1, 3) | (col("lo_quantity") > 45))
            .join(
                "date",
                on=("lo_orderdate", "d_datekey"),
                filters=[("d_year", "eq", 1993)],
                payload="d_year",
            )
            .group_by("d_year")
            .agg("sum", "lo_extendedprice", "lo_discount", combine="mul")
            .named("q1.1-disjunctive")
            .build(tiny_ssb)
        )

    def _brute_force(self, db):
        lo, date = db["lineorder"], db["date"]
        year_of = dict(zip(date["d_datekey"].tolist(), date["d_year"].tolist()))
        years = np.array([year_of[d] for d in lo["lo_orderdate"]])
        mask = (
            ((lo["lo_discount"] >= 1) & (lo["lo_discount"] <= 3)) | (lo["lo_quantity"] > 45)
        ) & (years == 1993)
        revenue = lo["lo_extendedprice"][mask].astype(np.float64) * lo["lo_discount"][
            mask
        ].astype(np.float64)
        return {(1993,): float(revenue.sum())}

    def test_cpu_gpu_coprocessor_identical(self, tiny_ssb, disjunctive_q11):
        session = Session(tiny_ssb)
        comparison = session.compare(disjunctive_q11, engines=["cpu", "gpu", "coprocessor"])
        assert comparison.consistent
        assert comparison.answer.value == pytest.approx(self._brute_force(tiny_ssb))

    def test_all_six_engines_agree(self, tiny_ssb, disjunctive_q11):
        session = Session(tiny_ssb)
        assert session.compare(disjunctive_q11, engines=available_engines()).consistent

    def test_negated_query_complements_count(self, tiny_ssb):
        base = col("lo_quantity") < 25
        total = tiny_ssb["lineorder"].num_rows
        kept = Q().where(base).agg("count").build(tiny_ssb)
        dropped = Q().where(~base).agg("count").build(tiny_ssb)
        value_kept, _ = execute_query(tiny_ssb, kept)
        value_dropped, _ = execute_query(tiny_ssb, dropped)
        assert value_kept + value_dropped == float(total)

    def test_profile_charges_each_filter_column_once(self, tiny_ssb, disjunctive_q11):
        _, profile = execute_query(tiny_ssb, disjunctive_q11)
        filter_columns = [a.column for a in profile.column_accesses if a.role == "filter"]
        assert sorted(filter_columns) == ["lo_discount", "lo_quantity"]

    def test_profile_dedupes_repeated_columns_across_leaves(self, tiny_ssb):
        query = (
            Q()
            .where((col("lo_discount") < 2) | (col("lo_discount") > 8))
            .agg("count")
            .build(tiny_ssb)
        )
        _, profile = execute_query(tiny_ssb, query)
        filter_columns = [a.column for a in profile.column_accesses if a.role == "filter"]
        assert filter_columns == ["lo_discount"]

    def test_planner_costs_tree_selectivities(self, tiny_ssb):
        from repro.engine.planner import JoinOrderPlanner

        query = (
            Q()
            .join(
                "supplier",
                on=("lo_suppkey", "s_suppkey"),
                filters=col("s_region").eq("ASIA") | col("s_region").eq("AMERICA"),
            )
            .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
            .group_by("d_year")
            .agg("sum", "lo_revenue")
            .build(tiny_ssb)
        )
        planner = JoinOrderPlanner(tiny_ssb)
        selectivity = planner.join_selectivity(query, "supplier")
        # Two of five regions: uniform SSB regions put this near 0.4.
        assert selectivity == pytest.approx(0.4, abs=0.15)
        reordered = planner.reorder(query)
        session = Session(tiny_ssb)
        assert session.run(reordered, engine="cpu").value == session.run(query, engine="cpu").value


class TestLegacyPathUnchanged:
    """All 13 canonical tuple-of-FilterSpec specs equal their tree forms."""

    def test_canonical_queries_match_their_and_tree_forms(self, tiny_ssb):
        from dataclasses import replace

        for name, query in QUERIES.items():
            as_tree = replace(
                query,
                fact_filters=as_pred(query.fact_filters),
                joins=tuple(replace(j, filters=j.predicate) for j in query.joins),
            )
            value_legacy, profile_legacy = execute_query(tiny_ssb, query)
            value_tree, profile_tree = execute_query(tiny_ssb, as_tree)
            assert value_tree == value_legacy, name
            assert [
                (a.column, a.rows_needed, a.role) for a in profile_tree.column_accesses
            ] == [(a.column, a.rows_needed, a.role) for a in profile_legacy.column_accesses], name

    def test_spec_level_boolean_operators_on_filterspecs(self, tiny_ssb):
        spec = FilterSpec("lo_quantity", "lt", 25) | FilterSpec("lo_discount", "eq", 0)
        assert isinstance(spec, Or)
        query = Q().where(spec).agg("count").build(tiny_ssb)
        value, _ = execute_query(tiny_ssb, query)
        lo = tiny_ssb["lineorder"]
        assert value == float(((lo["lo_quantity"] < 25) | (lo["lo_discount"] == 0)).sum())
