"""Tests for predicate-tree pushdown into the selection operators."""

import numpy as np
import pytest

from repro.api import col
from repro.engine.expr import evaluate_pred, predicate_leaf_count, predicate_or_branches
from repro.ops.cpu import cpu_select_pred
from repro.ops.gpu import gpu_select_pred
from repro.ssb.queries import FilterSpec
from repro.storage import Table


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(99)
    return Table.from_arrays(
        "t",
        {
            "x": rng.integers(0, 100, size=20_000).astype(np.int32),
            "y": rng.integers(0, 50, size=20_000).astype(np.int32),
        },
    )


BAND = col("x").between(10, 30)
BRANCHY = (col("x") == 10) | (col("x") == 20) | (col("x") == 30)
MIXED = ((col("x") < 10) | (col("y") > 40)) & (col("x") >= 2)


class TestPredicateShape:
    def test_counts(self):
        assert predicate_leaf_count(BAND) == 1
        assert predicate_or_branches(BAND) == 0
        assert predicate_leaf_count(BRANCHY) == 3
        assert predicate_or_branches(BRANCHY) == 2
        assert predicate_leaf_count(MIXED) == 3
        assert predicate_or_branches(MIXED) == 1
        assert predicate_or_branches(~BRANCHY) == 2
        # Legacy tuple conjunctions normalize too.
        assert predicate_leaf_count((FilterSpec("x", "lt", 5), FilterSpec("y", "gt", 1))) == 2
        assert predicate_or_branches(()) == 0


class TestCPUSelectPred:
    @pytest.mark.parametrize("pred", [BAND, BRANCHY, MIXED], ids=["band", "branchy", "mixed"])
    @pytest.mark.parametrize("variant", ["if", "pred", "simd_pred"])
    def test_matches_reference(self, table, pred, variant):
        result = cpu_select_pred(table, pred, variant=variant)
        expected = np.flatnonzero(evaluate_pred(table, pred))
        assert np.array_equal(result.value, expected)
        assert result.stats["matched"] == expected.shape[0]

    def test_each_column_read_once(self, table):
        result = cpu_select_pred(table, MIXED)
        # x appears in two leaves, y in one: bytes charged are one scan each.
        expected = float(table.column("x").nbytes + table.column("y").nbytes)
        assert result.traffic.sequential_read_bytes == expected

    def test_branching_variant_charges_or_terms(self, table):
        # Same rows either way: a fused band vs its exploded disjunction.
        band = cpu_select_pred(table, col("x").between(10, 12), variant="if")
        branchy = cpu_select_pred(
            table, (col("x") == 10) | (col("x") == 11) | (col("x") == 12), variant="if"
        )
        assert np.array_equal(band.value, branchy.value)
        assert branchy.traffic.data_dependent_branches == 3 * band.traffic.data_dependent_branches
        assert branchy.time.total_seconds > band.time.total_seconds

    def test_predicated_variants_charge_extra_passes(self, table):
        band = cpu_select_pred(table, BAND, variant="simd_pred")
        branchy = cpu_select_pred(table, BRANCHY, variant="simd_pred")
        assert branchy.traffic.compute_ops > band.traffic.compute_ops
        assert branchy.traffic.shared_bytes > band.traffic.shared_bytes
        # But never a branch penalty: predication has no data-dependent jumps.
        assert branchy.traffic.data_dependent_branches == 0

    def test_unknown_variant_rejected(self, table):
        with pytest.raises(ValueError, match="variant"):
            cpu_select_pred(table, BAND, variant="magic")


class TestGPUSelectPred:
    @pytest.mark.parametrize("pred", [BAND, BRANCHY, MIXED], ids=["band", "branchy", "mixed"])
    def test_matches_reference(self, table, pred):
        result = gpu_select_pred(table, pred)
        expected = np.flatnonzero(evaluate_pred(table, pred))
        assert np.array_equal(result.value, expected)

    def test_no_branch_penalty_on_simt(self, table):
        branchy = gpu_select_pred(table, BRANCHY)
        assert branchy.traffic.data_dependent_branches == 0
        assert branchy.stats["or_branches"] == 2.0

    def test_or_adds_only_compute(self, table):
        band = gpu_select_pred(table, BAND)
        branchy = gpu_select_pred(table, BRANCHY)
        assert branchy.traffic.compute_ops > band.traffic.compute_ops
        assert branchy.traffic.sequential_read_bytes == band.traffic.sequential_read_bytes


class TestSelectionVectorRefinement:
    """Late-materialized refinement: scans taking an incoming selection vector."""

    def _refined_reference(self, table, first, second):
        sel = np.flatnonzero(evaluate_pred(table, first))
        both = np.flatnonzero(evaluate_pred(table, first) & evaluate_pred(table, second))
        return sel, both

    @pytest.mark.parametrize("variant", ["if", "pred", "simd_pred"])
    def test_cpu_refined_value(self, table, variant):
        sel, both = self._refined_reference(table, BAND, col("y") > 40)
        result = cpu_select_pred(table, col("y") > 40, variant=variant, sel=sel)
        assert np.array_equal(result.value, both)
        assert result.stats["rows"] == float(sel.size)

    def test_gpu_refined_value(self, table):
        sel, both = self._refined_reference(table, BAND, col("y") > 40)
        result = gpu_select_pred(table, col("y") > 40, sel=sel)
        assert np.array_equal(result.value, both)

    def test_cpu_refinement_cheaper_than_rescan(self, table):
        # A tiny survivor set: refinement touches survivors-x-line bytes,
        # far less than a second full column scan.
        sel = np.flatnonzero(evaluate_pred(table, col("x") == 10))
        assert 0 < sel.size < table.num_rows // 50
        full = cpu_select_pred(table, col("y") > 40)
        refined = cpu_select_pred(table, col("y") > 40, sel=sel)
        assert refined.traffic.sequential_read_bytes < full.traffic.sequential_read_bytes
        assert refined.time.total_seconds < full.time.total_seconds

    def test_gpu_refinement_cheaper_than_rescan(self, table):
        sel = np.flatnonzero(evaluate_pred(table, col("x") == 10))
        full = gpu_select_pred(table, col("y") > 40)
        refined = gpu_select_pred(table, col("y") > 40, sel=sel)
        assert refined.traffic.sequential_read_bytes < full.traffic.sequential_read_bytes
        assert refined.time.total_seconds < full.time.total_seconds

    def test_near_full_selection_degenerates_to_scan_bytes(self, table):
        # min(full column, rows x line) caps the charge at the full scan.
        sel = np.arange(table.num_rows, dtype=np.int64)
        refined = cpu_select_pred(table, col("y") > 40, sel=sel)
        column_bytes = float(table.column("y").nbytes)
        assert refined.traffic.sequential_read_bytes == column_bytes + float(sel.nbytes)

    def test_empty_selection_vector(self, table):
        sel = np.array([], dtype=np.int64)
        result = cpu_select_pred(table, BAND, sel=sel)
        assert result.value.size == 0
        assert result.stats["selectivity"] == 0.0


class TestPackedScanPath:
    """Compressed scans: identical selection vectors, fewer charged bytes."""

    @pytest.fixture(scope="class")
    def packed(self, table):
        from repro.storage import BitPackedColumn

        return {
            "x": BitPackedColumn.pack(table.column("x")),  # 0..99: 7 bits
            "y": BitPackedColumn.pack(table.column("y")),  # 0..49: 6 bits
        }

    @pytest.mark.parametrize("pred", [BAND, BRANCHY, MIXED], ids=["band", "branchy", "mixed"])
    def test_cpu_values_identical(self, table, packed, pred):
        plain = cpu_select_pred(table, pred)
        compressed = cpu_select_pred(table, pred, packed=packed)
        np.testing.assert_array_equal(plain.value, compressed.value)

    @pytest.mark.parametrize("pred", [BAND, BRANCHY, MIXED], ids=["band", "branchy", "mixed"])
    def test_gpu_values_identical(self, table, packed, pred):
        plain = gpu_select_pred(table, pred)
        compressed = gpu_select_pred(table, pred, packed=packed)
        np.testing.assert_array_equal(plain.value, compressed.value)

    def test_full_scan_charges_packed_bytes(self, table, packed):
        n = table.num_rows
        compressed = cpu_select_pred(table, BAND, packed=packed)
        assert compressed.stats["scan_bytes"] == float(np.ceil(n * 7 / 8))
        plain = cpu_select_pred(table, BAND)
        assert plain.stats["scan_bytes"] == float(n * 4)
        assert compressed.stats["packed_columns"] == 1.0

    def test_gather_charges_bits_not_lines(self, table, packed):
        sel = np.arange(0, table.num_rows, 97, dtype=np.int64)
        compressed = cpu_select_pred(table, BAND, sel=sel, packed=packed)
        assert compressed.stats["scan_bytes"] == float(np.ceil(sel.size * 7 / 8))
        plain = cpu_select_pred(table, BAND, sel=sel)
        assert plain.stats["scan_bytes"] == float(min(table.num_rows * 4, sel.size * 64))
        np.testing.assert_array_equal(plain.value, compressed.value)

    def test_packed_charge_never_exceeds_packed_column(self, table, packed):
        """A near-full gather caps at the whole packed column's bytes."""
        sel = np.arange(table.num_rows, dtype=np.int64)
        compressed = cpu_select_pred(table, BAND, sel=sel, packed=packed)
        assert compressed.stats["scan_bytes"] <= packed["x"].packed_bytes

    def test_decode_ops_are_charged(self, table, packed):
        plain = cpu_select_pred(table, BAND)
        compressed = cpu_select_pred(table, BAND, packed=packed)
        assert compressed.traffic.compute_ops > plain.traffic.compute_ops

    def test_gpu_full_scan_charges_packed_bytes(self, table, packed):
        compressed = gpu_select_pred(table, BAND, packed=packed)
        assert compressed.stats["scan_bytes"] == float(np.ceil(table.num_rows * 7 / 8))

    def test_cpu_gather_kernel_round_trips(self, table, packed):
        from repro.ops.cpu import cpu_gather_packed

        sel = np.arange(3, table.num_rows, 53, dtype=np.int64)
        result = cpu_gather_packed(packed["y"], sel)
        np.testing.assert_array_equal(result.value, table["y"][sel])
        assert result.traffic.sequential_read_bytes >= np.ceil(sel.size * 6 / 8)

    def test_gpu_gather_kernel_round_trips(self, table, packed):
        from repro.ops.gpu import gpu_gather_packed

        sel = np.arange(0, table.num_rows, 11, dtype=np.int64)
        result = gpu_gather_packed(packed["y"], sel)
        np.testing.assert_array_equal(result.value, table["y"][sel])
        assert result.stats["bit_width"] == 6.0
