"""Tests for predicate-tree pushdown into the selection operators."""

import numpy as np
import pytest

from repro.api import col
from repro.engine.expr import evaluate_pred, predicate_leaf_count, predicate_or_branches
from repro.ops.cpu import cpu_select_pred
from repro.ops.gpu import gpu_select_pred
from repro.ssb.queries import FilterSpec
from repro.storage import Table


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(99)
    return Table.from_arrays(
        "t",
        {
            "x": rng.integers(0, 100, size=20_000).astype(np.int32),
            "y": rng.integers(0, 50, size=20_000).astype(np.int32),
        },
    )


BAND = col("x").between(10, 30)
BRANCHY = (col("x") == 10) | (col("x") == 20) | (col("x") == 30)
MIXED = ((col("x") < 10) | (col("y") > 40)) & (col("x") >= 2)


class TestPredicateShape:
    def test_counts(self):
        assert predicate_leaf_count(BAND) == 1
        assert predicate_or_branches(BAND) == 0
        assert predicate_leaf_count(BRANCHY) == 3
        assert predicate_or_branches(BRANCHY) == 2
        assert predicate_leaf_count(MIXED) == 3
        assert predicate_or_branches(MIXED) == 1
        assert predicate_or_branches(~BRANCHY) == 2
        # Legacy tuple conjunctions normalize too.
        assert predicate_leaf_count((FilterSpec("x", "lt", 5), FilterSpec("y", "gt", 1))) == 2
        assert predicate_or_branches(()) == 0


class TestCPUSelectPred:
    @pytest.mark.parametrize("pred", [BAND, BRANCHY, MIXED], ids=["band", "branchy", "mixed"])
    @pytest.mark.parametrize("variant", ["if", "pred", "simd_pred"])
    def test_matches_reference(self, table, pred, variant):
        result = cpu_select_pred(table, pred, variant=variant)
        expected = np.flatnonzero(evaluate_pred(table, pred))
        assert np.array_equal(result.value, expected)
        assert result.stats["matched"] == expected.shape[0]

    def test_each_column_read_once(self, table):
        result = cpu_select_pred(table, MIXED)
        # x appears in two leaves, y in one: bytes charged are one scan each.
        expected = float(table.column("x").nbytes + table.column("y").nbytes)
        assert result.traffic.sequential_read_bytes == expected

    def test_branching_variant_charges_or_terms(self, table):
        # Same rows either way: a fused band vs its exploded disjunction.
        band = cpu_select_pred(table, col("x").between(10, 12), variant="if")
        branchy = cpu_select_pred(
            table, (col("x") == 10) | (col("x") == 11) | (col("x") == 12), variant="if"
        )
        assert np.array_equal(band.value, branchy.value)
        assert branchy.traffic.data_dependent_branches == 3 * band.traffic.data_dependent_branches
        assert branchy.time.total_seconds > band.time.total_seconds

    def test_predicated_variants_charge_extra_passes(self, table):
        band = cpu_select_pred(table, BAND, variant="simd_pred")
        branchy = cpu_select_pred(table, BRANCHY, variant="simd_pred")
        assert branchy.traffic.compute_ops > band.traffic.compute_ops
        assert branchy.traffic.shared_bytes > band.traffic.shared_bytes
        # But never a branch penalty: predication has no data-dependent jumps.
        assert branchy.traffic.data_dependent_branches == 0

    def test_unknown_variant_rejected(self, table):
        with pytest.raises(ValueError, match="variant"):
            cpu_select_pred(table, BAND, variant="magic")


class TestGPUSelectPred:
    @pytest.mark.parametrize("pred", [BAND, BRANCHY, MIXED], ids=["band", "branchy", "mixed"])
    def test_matches_reference(self, table, pred):
        result = gpu_select_pred(table, pred)
        expected = np.flatnonzero(evaluate_pred(table, pred))
        assert np.array_equal(result.value, expected)

    def test_no_branch_penalty_on_simt(self, table):
        branchy = gpu_select_pred(table, BRANCHY)
        assert branchy.traffic.data_dependent_branches == 0
        assert branchy.stats["or_branches"] == 2.0

    def test_or_adds_only_compute(self, table):
        band = gpu_select_pred(table, BAND)
        branchy = gpu_select_pred(table, BRANCHY)
        assert branchy.traffic.compute_ops > band.traffic.compute_ops
        assert branchy.traffic.sequential_read_bytes == band.traffic.sequential_read_bytes


class TestSelectionVectorRefinement:
    """Late-materialized refinement: scans taking an incoming selection vector."""

    def _refined_reference(self, table, first, second):
        sel = np.flatnonzero(evaluate_pred(table, first))
        both = np.flatnonzero(evaluate_pred(table, first) & evaluate_pred(table, second))
        return sel, both

    @pytest.mark.parametrize("variant", ["if", "pred", "simd_pred"])
    def test_cpu_refined_value(self, table, variant):
        sel, both = self._refined_reference(table, BAND, col("y") > 40)
        result = cpu_select_pred(table, col("y") > 40, variant=variant, sel=sel)
        assert np.array_equal(result.value, both)
        assert result.stats["rows"] == float(sel.size)

    def test_gpu_refined_value(self, table):
        sel, both = self._refined_reference(table, BAND, col("y") > 40)
        result = gpu_select_pred(table, col("y") > 40, sel=sel)
        assert np.array_equal(result.value, both)

    def test_cpu_refinement_cheaper_than_rescan(self, table):
        # A tiny survivor set: refinement touches survivors-x-line bytes,
        # far less than a second full column scan.
        sel = np.flatnonzero(evaluate_pred(table, col("x") == 10))
        assert 0 < sel.size < table.num_rows // 50
        full = cpu_select_pred(table, col("y") > 40)
        refined = cpu_select_pred(table, col("y") > 40, sel=sel)
        assert refined.traffic.sequential_read_bytes < full.traffic.sequential_read_bytes
        assert refined.time.total_seconds < full.time.total_seconds

    def test_gpu_refinement_cheaper_than_rescan(self, table):
        sel = np.flatnonzero(evaluate_pred(table, col("x") == 10))
        full = gpu_select_pred(table, col("y") > 40)
        refined = gpu_select_pred(table, col("y") > 40, sel=sel)
        assert refined.traffic.sequential_read_bytes < full.traffic.sequential_read_bytes
        assert refined.time.total_seconds < full.time.total_seconds

    def test_near_full_selection_degenerates_to_scan_bytes(self, table):
        # min(full column, rows x line) caps the charge at the full scan.
        sel = np.arange(table.num_rows, dtype=np.int64)
        refined = cpu_select_pred(table, col("y") > 40, sel=sel)
        column_bytes = float(table.column("y").nbytes)
        assert refined.traffic.sequential_read_bytes == column_bytes + float(sel.nbytes)

    def test_empty_selection_vector(self, table):
        sel = np.array([], dtype=np.int64)
        result = cpu_select_pred(table, BAND, sel=sel)
        assert result.value.size == 0
        assert result.stats["selectivity"] == 0.0
