"""Tests for the cost-based join-order planner."""

import pytest

from repro.engine import (
    CoprocessorEngine,
    CPUStandaloneEngine,
    GPUStandaloneEngine,
    HyperLikeEngine,
    JoinOrderPlanner,
    MonetDBLikeEngine,
    OmnisciLikeEngine,
)
from repro.engine.planner import joins_by_dimension
from repro.ssb.queries import QUERIES

ALL_ENGINES = [
    CPUStandaloneEngine,
    GPUStandaloneEngine,
    CoprocessorEngine,
    HyperLikeEngine,
    MonetDBLikeEngine,
    OmnisciLikeEngine,
]

MULTI_JOIN_QUERIES = ["q2.1", "q2.2", "q3.1", "q3.4", "q4.1", "q4.3"]


@pytest.fixture(scope="module")
def planner(tiny_ssb):
    return JoinOrderPlanner(tiny_ssb)


class TestReorderPreservesAnswers:
    @pytest.mark.parametrize("query_name", MULTI_JOIN_QUERIES)
    def test_reordered_query_gives_exact_same_answer_on_all_engines(
        self, tiny_ssb, planner, query_name
    ):
        query = QUERIES[query_name]
        reordered = planner.reorder(query)
        for engine_cls in ALL_ENGINES:
            engine = engine_cls(tiny_ssb)
            assert engine.run(reordered).value == engine.run(query).value, (
                f"{engine_cls.name} changed its answer for {query_name} after reordering"
            )

    def test_reorder_is_a_permutation_of_the_joins(self, planner):
        query = QUERIES["q4.1"]
        reordered = planner.reorder(query)
        assert sorted(j.dimension for j in reordered.joins) == sorted(
            j.dimension for j in query.joins
        )
        assert joins_by_dimension(reordered) == joins_by_dimension(query)

    def test_reorder_leaves_everything_but_joins_unchanged(self, planner):
        query = QUERIES["q2.1"]
        reordered = planner.reorder(query)
        assert reordered.name == query.name
        assert reordered.fact_filters == query.fact_filters
        assert reordered.group_by == query.group_by
        assert reordered.aggregate == query.aggregate


class TestEnumerate:
    def test_enumerate_is_sorted_cheapest_first(self, planner):
        choices = planner.enumerate(QUERIES["q4.1"])
        costs = [choice.estimated_seconds for choice in choices]
        assert costs == sorted(costs)
        # 4 dimension joins -> 4! = 24 candidate orders.
        assert len(choices) == 24

    def test_best_order_is_head_of_enumeration(self, planner):
        query = QUERIES["q3.1"]
        assert planner.best_order(query) == planner.enumerate(query)[0]

    def test_selectivities_match_join_selectivity(self, planner):
        query = QUERIES["q2.1"]
        best = planner.best_order(query)
        for dimension, selectivity in zip(best.join_order, best.selectivities):
            assert selectivity == pytest.approx(planner.join_selectivity(query, dimension))


class TestPaperPlanChoice:
    def test_q21_best_order_is_supplier_part_date(self, planner):
        """Section 5.3: the paper runs q2.1 as supplier, then part, then date."""
        assert planner.best_order(QUERIES["q2.1"]).join_order == ("supplier", "part", "date")

    def test_q21_best_order_at_paper_scale(self, planner):
        best = planner.best_order(QUERIES["q2.1"], fact_rows=120_000_000)
        assert best.join_order == ("supplier", "part", "date")

    def test_unfiltered_date_join_goes_last_for_q21(self, planner):
        """The only join with no filter (selectivity 1.0) should never lead."""
        best = planner.best_order(QUERIES["q2.1"])
        assert best.join_order[-1] == "date"


class TestJoinSelectivity:
    def test_selectivity_of_unfiltered_join_is_one(self, planner):
        assert planner.join_selectivity(QUERIES["q2.1"], "date") == 1.0

    def test_selectivity_of_region_filter_is_about_one_fifth(self, planner):
        selectivity = planner.join_selectivity(QUERIES["q2.1"], "supplier")
        assert selectivity == pytest.approx(0.2, abs=0.1)

    def test_joins_by_dimension_maps_every_join(self):
        query = QUERIES["q4.2"]
        mapping = joins_by_dimension(query)
        assert set(mapping) == {"customer", "supplier", "part", "date"}
        for join in query.joins:
            assert mapping[join.dimension] is join

    def test_join_selectivity_of_unique_dimension_in_role_playing_query(self, planner):
        """A repeated dimension elsewhere must not block an unambiguous lookup."""
        from dataclasses import replace

        from repro.ssb.queries import JoinSpec

        base = QUERIES["q2.1"]
        query = replace(
            base,
            joins=base.joins + (JoinSpec("date", "lo_orderkey", "d_datekey"),),
        )
        expected = planner.join_selectivity(base, "supplier")
        assert planner.join_selectivity(query, "supplier") == expected
        with pytest.raises(ValueError, match="more than once"):
            planner.join_selectivity(query, "date")
        with pytest.raises(KeyError, match="no join"):
            planner.join_selectivity(query, "customer")

    def test_role_playing_dimension_query_cannot_be_planned(self, planner):
        """Reordering must refuse (not silently corrupt) duplicate-dimension joins."""
        from dataclasses import replace

        from repro.ssb.queries import FilterSpec, JoinSpec

        query = replace(
            QUERIES["q1.1"],
            joins=(
                JoinSpec("date", "lo_orderdate", "d_datekey",
                         (FilterSpec("d_year", "eq", 1993),)),
                JoinSpec("date", "lo_orderdate", "d_datekey",
                         (FilterSpec("d_yearmonthnum", "ge", 199306),)),
            ),
        )
        with pytest.raises(ValueError, match="more than once"):
            planner.reorder(query)
        with pytest.raises(ValueError, match="more than once"):
            joins_by_dimension(query)
