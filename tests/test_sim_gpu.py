"""Tests for the GPU performance simulator."""

import pytest

from repro.hardware.counters import TrafficCounter
from repro.hardware.presets import NVIDIA_V100
from repro.sim.gpu import GPUSimulator, KernelLaunch


class TestKernelLaunch:
    def test_tile_size(self):
        assert KernelLaunch(threads_per_block=128, items_per_thread=4).tile_size == 512

    def test_load_efficiency_prefers_four_items(self):
        assert KernelLaunch(items_per_thread=4).load_efficiency() == 1.0
        assert KernelLaunch(items_per_thread=2).load_efficiency() < 1.0
        assert KernelLaunch(items_per_thread=1).load_efficiency() < KernelLaunch(items_per_thread=2).load_efficiency()


class TestBandwidthPrimitives:
    def test_sequential_read_time(self, gpu_sim):
        assert gpu_sim.sequential_read_seconds(880e9) == pytest.approx(1.0)

    def test_low_efficiency_slows_reads(self, gpu_sim):
        assert gpu_sim.sequential_read_seconds(1e9, efficiency=0.5) == pytest.approx(
            2 * gpu_sim.sequential_read_seconds(1e9, efficiency=1.0)
        )

    def test_shared_memory_is_an_order_of_magnitude_faster(self, gpu_sim):
        shared = gpu_sim.shared_memory_seconds(1e9)
        global_mem = gpu_sim.sequential_read_seconds(1e9)
        assert shared < global_mem / 5


class TestRandomAccess:
    def test_l1_resident_probes_are_nearly_free(self, gpu_sim):
        seconds, level = gpu_sim.random_access_seconds(1e6, 8 * 1024)
        assert level == "L2"
        assert seconds < 1e-4

    def test_l2_resident_probes_use_l2_bandwidth(self, gpu_sim):
        seconds, level = gpu_sim.random_access_seconds(1e8, 2 * 2**20)
        assert level == "L2"
        assert seconds > 0

    def test_large_tables_go_to_global_memory(self, gpu_sim):
        seconds_small, _ = gpu_sim.random_access_seconds(1e8, 2 * 2**20)
        seconds_large, level = gpu_sim.random_access_seconds(1e8, 512 * 2**20)
        assert level == "global"
        assert seconds_large > seconds_small

    def test_step_increase_at_l2_boundary(self, gpu_sim):
        """The paper's Figure 13 step when the hash table exceeds the 6 MB L2."""
        below, _ = gpu_sim.random_access_seconds(1e8, 5 * 2**20)
        above, _ = gpu_sim.random_access_seconds(1e8, 16 * 2**20)
        assert above > below * 1.5


class TestAtomicsAndSync:
    def test_single_counter_contention_serializes(self, gpu_sim):
        contended = gpu_sim.atomic_seconds(1e7, num_targets=1)
        spread = gpu_sim.atomic_seconds(1e7, num_targets=1000)
        assert contended > spread

    def test_sync_overhead_grows_with_block_size(self, gpu_sim):
        small = gpu_sim.sync_overhead_seconds(
            KernelLaunch(threads_per_block=128, items_per_thread=4, barriers_per_tile=2), 1e5
        )
        large = gpu_sim.sync_overhead_seconds(
            KernelLaunch(threads_per_block=1024, items_per_thread=4, barriers_per_tile=2), 1e5 / 8
        )
        assert large > small

    def test_latency_penalty_only_at_low_occupancy(self, gpu_sim):
        good = KernelLaunch(threads_per_block=128, shared_bytes_per_block=2048)
        # A 256-thread block that monopolizes shared memory leaves a single
        # resident block (8 warps of 64) on the SM: occupancy 0.125.
        bad = KernelLaunch(threads_per_block=256, shared_bytes_per_block=90 * 1024,
                           registers_per_thread=64)
        assert gpu_sim.latency_penalty_seconds(good, 1e5) == 0.0
        assert gpu_sim.occupancy(bad) < 0.25
        assert gpu_sim.latency_penalty_seconds(bad, 1e5) > 0.0


class TestRunKernel:
    def test_bandwidth_bound_kernel(self, gpu_sim):
        traffic = TrafficCounter(sequential_read_bytes=880e9)
        execution = gpu_sim.run_kernel(traffic, KernelLaunch())
        # 880 GB at 880 GBps: one second of data path plus a few percent of
        # barrier overhead.
        assert execution.seconds == pytest.approx(1.0, rel=0.05)

    def test_atomics_add_to_runtime(self, gpu_sim):
        base = gpu_sim.run_kernel(TrafficCounter(sequential_read_bytes=1e9))
        with_atomics = gpu_sim.run_kernel(
            TrafficCounter(sequential_read_bytes=1e9, atomic_updates=1e7, atomic_targets=1)
        )
        assert with_atomics.seconds > base.seconds

    def test_global_probe_traffic_adds(self, gpu_sim):
        base = gpu_sim.run_kernel(TrafficCounter(sequential_read_bytes=8.8e9))
        probes = gpu_sim.run_kernel(
            TrafficCounter(sequential_read_bytes=8.8e9, random_accesses=1e8,
                           random_working_set_bytes=1 << 30)
        )
        assert probes.seconds > base.seconds * 1.5

    def test_cached_probe_traffic_overlaps(self, gpu_sim):
        base = gpu_sim.run_kernel(TrafficCounter(sequential_read_bytes=8.8e9))
        probes = gpu_sim.run_kernel(
            TrafficCounter(sequential_read_bytes=8.8e9, random_accesses=1e6,
                           random_working_set_bytes=64 * 1024)
        )
        assert probes.seconds == pytest.approx(base.seconds, rel=0.05)

    def test_execution_reports_occupancy(self, gpu_sim):
        execution = gpu_sim.run_kernel(TrafficCounter(sequential_read_bytes=1e9),
                                       KernelLaunch(threads_per_block=128))
        assert 0.0 < execution.occupancy <= 1.0

    def test_run_kernels_accumulates(self, gpu_sim):
        k1 = gpu_sim.run_kernel(TrafficCounter(sequential_read_bytes=1e9))
        k2 = gpu_sim.run_kernel(TrafficCounter(sequential_read_bytes=2e9))
        total = gpu_sim.run_kernels([k1, k2])
        assert total.total_seconds == pytest.approx(k1.seconds + k2.seconds)


class TestPaperShapes:
    def test_items_per_thread_four_is_fastest(self, gpu_sim):
        """Figure 9: four items per thread outperforms one and two."""
        times = {}
        for ipt in (1, 2, 4):
            launch = KernelLaunch(threads_per_block=128, items_per_thread=ipt,
                                  shared_bytes_per_block=128 * ipt * 8)
            traffic = TrafficCounter(sequential_read_bytes=2.1e9, sequential_write_bytes=1e9,
                                     atomic_updates=2.1e9 / 4 / launch.tile_size)
            times[ipt] = gpu_sim.run_kernel(traffic, launch).seconds
        assert times[4] < times[2] < times[1]

    def test_tiny_blocks_pay_for_atomics(self, gpu_sim):
        """Figure 9: 32-thread blocks issue 4x the atomics of 128-thread blocks."""
        def run(block):
            launch = KernelLaunch(threads_per_block=block, items_per_thread=4,
                                  shared_bytes_per_block=block * 4 * 8)
            n = 2**29
            traffic = TrafficCounter(sequential_read_bytes=4.0 * n, sequential_write_bytes=2.0 * n,
                                     atomic_updates=n / launch.tile_size)
            return gpu_sim.run_kernel(traffic, launch).seconds

        assert run(32) > run(128)
