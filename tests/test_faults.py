"""Deterministic chaos: fault injection, recovery, and the degradation ladder.

The headline suite is differential chaos: every pooled fault mode (worker
``kill``, segment ``unlink``, transient ``raise``) crossed with both
process start methods, running the full 13-query SSB batch under an active
:class:`~repro.faults.FaultPlan` -- answers and profiles must stay
byte-identical to the unfaulted monolithic plane, with the recovery
visible in the counters (retries, pool rebuilds, or monolithic fallbacks).

Around it: unit tests of the plan/point/policy value objects (arming
budgets, seeded probability, deterministic backoff), the shm janitor
(dead-owner segments reclaimed, live owners spared), the service retry
rung (transient failures absorbed into ``trace.attempts``), the breaker
rung (trip, degrade to ``shards=1``, probe, heal), and executor close
robustness after real worker death.

The session-scoped ``shm_leak_guard`` fixture in ``conftest.py`` brackets
this whole file too: killing workers and unlinking segments mid-query must
still leave ``/dev/shm`` exactly as it was found.
"""

import asyncio
import multiprocessing
import os
import time
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.api import Session
from repro.engine.plan import execute_query_monolithic
from repro.faults import (
    SERVICE_EXECUTE,
    SHARD_TASK,
    FaultAction,
    FaultPlan,
    FaultPoint,
    ResiliencePolicy,
    TransientFaultError,
    activate_faults,
    active_fault_plan,
    unlink_segment,
)
from repro.service import QueryService, ServiceResult
from repro.ssb.queries import QUERIES
from repro.storage.shm import SEGMENT_PREFIX, SharedMemoryRegistry, reap_stale_segments

START_METHODS = ("fork", "spawn")

#: Fault modes the pooled chaos suite injects into shard tasks.  ``latency``
#: is exercised separately through the per-task timeout (it needs one).
POOLED_MODES = ("kill", "raise", "unlink")

GUARD_S = 30.0


def run(coro):
    async def guarded():
        return await asyncio.wait_for(coro, timeout=GUARD_S)

    return asyncio.run(guarded())


# ----------------------------------------------------------------------
# FaultPlan / FaultPoint unit behaviour
# ----------------------------------------------------------------------


class TestFaultPlanUnit:
    def test_point_validation(self):
        with pytest.raises(ValueError):
            FaultPoint(site="", mode="raise")
        with pytest.raises(ValueError):
            FaultPoint(site="s", mode="explode")
        with pytest.raises(ValueError):
            FaultPoint(site="s", mode="raise", skip=-1)
        with pytest.raises(ValueError):
            FaultPoint(site="s", mode="raise", times=0)
        with pytest.raises(ValueError):
            FaultPoint(site="s", mode="latency", delay_s=-0.1)
        with pytest.raises(ValueError):
            FaultPoint(site="s", mode="raise", probability=0.0)
        with pytest.raises(ValueError):
            FaultPoint(site="s", mode="raise", probability=1.5)

    def test_skip_then_times_budget(self):
        plan = FaultPlan([FaultPoint(site="s", mode="raise", skip=1, times=2)])
        armed = [plan.arm("s") is not None for _ in range(5)]
        assert armed == [False, True, True, False, False]
        assert plan.arrivals("s") == 5
        assert plan.fired("s") == 2
        assert plan.fired() == 2
        assert plan.stats() == {"s": {"arrivals": 5, "fired": 2}}

    def test_sites_are_independent(self):
        plan = FaultPlan([FaultPoint(site="a", mode="raise", times=1)])
        assert plan.arm("b") is None
        assert plan.arm("a") is not None  # b's arrival spent nothing of a's budget
        assert plan.arrivals("b") == 1 and plan.fired("b") == 0

    def test_probability_stream_is_seeded(self):
        def pattern(seed):
            plan = FaultPlan(
                [FaultPoint(site="s", mode="raise", times=100, probability=0.5)], seed=seed
            )
            return [plan.arm("s") is not None for _ in range(40)]

        assert pattern(3) == pattern(3)  # same seed, same faulted arrivals
        fired = sum(pattern(3))
        assert 0 < fired < 40  # the coin actually flips both ways

    def test_fire_raises_transient(self):
        plan = FaultPlan([FaultPoint(site="s", mode="raise")])
        with pytest.raises(TransientFaultError):
            plan.fire("s")
        assert plan.fire("s") is None  # budget spent: site is quiet again

    def test_fire_latency_sleeps(self):
        plan = FaultPlan([FaultPoint(site="s", mode="latency", delay_s=0.05)])
        start = time.perf_counter()
        action = plan.fire("s")
        assert action is not None and action.mode == "latency"
        assert time.perf_counter() - start >= 0.05

    def test_unlink_fault_tears_down_the_name(self):
        registry = SharedMemoryRegistry(janitor=False)
        try:
            spec = registry.share_array(np.arange(16))
            path = os.path.join("/dev/shm", spec.segment)
            assert os.path.exists(path)
            plan = FaultPlan([FaultPoint(site="s", mode="unlink")])
            action = plan.fire("s", segment=spec.segment)
            assert action == FaultAction(site="s", mode="unlink")
            assert not os.path.exists(path)
            assert unlink_segment(spec.segment) is False  # already gone
        finally:
            registry.close()  # must tolerate the vanished name

    def test_activation_scope(self):
        assert active_fault_plan() is None
        plan = FaultPlan([])
        with activate_faults(plan) as active:
            assert active is plan
            assert active_fault_plan() is plan
        assert active_fault_plan() is None


class TestResiliencePolicyUnit:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base_s": -1.0},
            {"backoff_multiplier": 0.5},
            {"backoff_max_s": -0.1},
            {"jitter": -0.1},
            {"breaker_threshold": 0},
            {"breaker_probe_every": 0},
            {"shard_retry_budget": -1},
            {"shard_task_timeout_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)

    def test_backoff_is_deterministic_exponential_and_capped(self):
        policy = ResiliencePolicy(
            backoff_base_s=0.1, backoff_multiplier=2.0, backoff_max_s=0.3, jitter=0.5, seed=7
        )
        assert policy.backoff_s(42, 1) == policy.backoff_s(42, 1)  # replayable
        assert policy.backoff_s(42, 1) != policy.backoff_s(43, 1)  # de-synchronized
        assert 0.1 <= policy.backoff_s(42, 1) <= 0.15
        assert 0.2 <= policy.backoff_s(42, 2) <= 0.3
        assert 0.3 <= policy.backoff_s(42, 9) <= 0.45  # base capped at max
        with pytest.raises(ValueError):
            policy.backoff_s(42, 0)

    def test_zero_jitter_is_exact(self):
        policy = ResiliencePolicy(backoff_base_s=0.02, backoff_multiplier=2.0, jitter=0.0)
        assert policy.backoff_s(1, 1) == 0.02
        assert policy.backoff_s(1, 2) == 0.04

    def test_is_transient(self):
        policy = ResiliencePolicy()
        assert policy.is_transient(TransientFaultError("x"))
        assert policy.is_transient(BrokenProcessPool("pool died"))
        assert policy.is_transient(ConnectionError())
        assert not policy.is_transient(ValueError("bad column"))


# ----------------------------------------------------------------------
# The shm janitor
# ----------------------------------------------------------------------


def _dead_pid() -> int:
    """A pid that is guaranteed to name no live process."""
    proc = multiprocessing.get_context("fork").Process(target=time.sleep, args=(0,))
    proc.start()
    proc.join()
    return proc.pid


class TestJanitor:
    def test_reaps_dead_owner_segments(self):
        name = f"{SEGMENT_PREFIX}-{_dead_pid()}-feedface-0"
        segment = shared_memory.SharedMemory(name=name, create=True, size=8)
        segment.close()  # drop our mapping; the *name* is the debris
        reclaimed = reap_stale_segments()
        assert name in reclaimed
        assert not os.path.exists(os.path.join("/dev/shm", name))

    def test_spares_live_owners(self):
        registry = SharedMemoryRegistry(janitor=False)  # names embed our live pid
        try:
            spec = registry.share_array(np.arange(8))
            assert reap_stale_segments() == []
            assert os.path.exists(os.path.join("/dev/shm", spec.segment))
        finally:
            registry.close()

    def test_new_registry_sweeps_on_start(self):
        name = f"{SEGMENT_PREFIX}-{_dead_pid()}-deadbeef-0"
        segment = shared_memory.SharedMemory(name=name, create=True, size=8)
        segment.close()
        registry = SharedMemoryRegistry()  # janitor on by default
        try:
            assert not os.path.exists(os.path.join("/dev/shm", name))
        finally:
            registry.close()


# ----------------------------------------------------------------------
# Differential chaos: the shard plane survives real failures byte-identically
# ----------------------------------------------------------------------


class TestChaosDifferential:
    @pytest.mark.parametrize("method", START_METHODS)
    @pytest.mark.parametrize("mode", POOLED_MODES)
    def test_faulted_batch_matches_monolithic(self, tiny_ssb, mode, method):
        """Acceptance: kill/raise/unlink x fork/spawn, 13 queries, same bytes."""
        plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode=mode, times=2)])
        with Session(tiny_ssb, shard_start_method=method, faults=plan) as session:
            before = session.counters()
            for name in sorted(QUERIES):
                expected_value, _ = execute_query_monolithic(tiny_ssb, QUERIES[name])
                sharded = session.run(QUERIES[name], shards=2, cache=False)
                plain = session.run(QUERIES[name], cache=False)
                assert sharded.records == plain.records, name
                assert sharded.stats == plain.stats, name
                assert sharded.time == plain.time, name
                assert plain.value == expected_value, name
            delta = session.counters() - before
        assert plan.fired(SHARD_TASK) >= 1  # the chaos actually happened
        # ... and recovering from it is visible in the counters.
        assert delta.shard_retries + delta.pool_rebuilds + delta.failure_fallbacks >= 1

    def test_kill_rebuilds_the_pool(self, tiny_ssb):
        plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode="kill", times=2)])
        with Session(tiny_ssb, shard_start_method="fork", faults=plan) as session:
            before = session.counters()
            result = session.run(QUERIES["q1.1"], shards=2, cache=False)
            delta = session.counters() - before
            plain = session.run(QUERIES["q1.1"], cache=False)
            assert result.records == plain.records
        assert delta.pool_rebuilds >= 1
        assert delta.shard_retries >= 1
        assert delta.shard_queries == 1  # recovered in place, no fallback

    def test_unlink_reexports_and_recovers(self, tiny_ssb):
        plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode="unlink", times=1)])
        with Session(tiny_ssb, shard_start_method="fork", faults=plan) as session:
            before = session.counters()
            result = session.run(QUERIES["q2.1"], shards=2, cache=False)
            delta = session.counters() - before
            plain = session.run(QUERIES["q2.1"], cache=False)
            assert result.records == plain.records
        assert delta.shard_retries >= 1
        assert delta.shard_queries == 1

    def test_hung_task_times_out_and_retries(self, tiny_ssb):
        plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode="latency", delay_s=1.0)])
        policy = ResiliencePolicy(shard_task_timeout_s=0.2)
        with Session(
            tiny_ssb, shard_start_method="fork", faults=plan, resilience=policy
        ) as session:
            before = session.counters()
            result = session.run(QUERIES["q1.1"], shards=2, cache=False)
            delta = session.counters() - before
            plain = session.run(QUERIES["q1.1"], cache=False)
            assert result.records == plain.records
        assert delta.shard_retries >= 1
        assert delta.pool_rebuilds >= 1  # the hung pool was discarded

    def test_budget_exhaustion_falls_back_monolithic(self, tiny_ssb):
        plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode="raise", times=10)])
        policy = ResiliencePolicy(shard_retry_budget=1)
        with Session(
            tiny_ssb, shard_start_method="fork", faults=plan, resilience=policy
        ) as session:
            before = session.counters()
            result = session.run(QUERIES["q2.1"], shards=2, cache=False)
            delta = session.counters() - before
            plain = session.run(QUERIES["q2.1"], cache=False)
            assert result.records == plain.records
        assert delta.failure_fallbacks == 1
        assert delta.shard_retries == 1  # one round of repair was attempted
        assert delta.shard_queries == 0  # the shard plane never answered

    def test_close_after_worker_death_is_clean_and_idempotent(self, tiny_ssb):
        plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode="kill")])
        policy = ResiliencePolicy(shard_retry_budget=0)
        session = Session(
            tiny_ssb, shard_start_method="fork", faults=plan, resilience=policy
        )
        result = session.run(QUERIES["q1.1"], shards=2, cache=False)
        plain = session.run(QUERIES["q1.1"], cache=False)
        assert result.records == plain.records
        executor = session.shard_executor()
        assert executor.stats().failure_fallbacks == 1
        session.close()
        session.close()  # idempotent, even after real worker death
        assert executor.registry.closed
        assert executor.registry.num_segments == 0


# ----------------------------------------------------------------------
# The service's retry and breaker rungs
# ----------------------------------------------------------------------

FAST_BACKOFF = dict(backoff_base_s=0.005, backoff_max_s=0.02)


class TestServiceRetries:
    def test_transient_failures_absorbed_into_attempts(self, tiny_ssb):
        plan = FaultPlan([FaultPoint(site=SERVICE_EXECUTE, mode="raise", times=2)])
        policy = ResiliencePolicy(max_attempts=3, **FAST_BACKOFF)

        async def go():
            with Session(tiny_ssb, faults=plan, resilience=policy) as session:
                async with QueryService(session) as service:
                    outcome = await service.submit(QUERIES["q1.1"])
                    return outcome, service.stats

        outcome, stats = run(go())
        assert isinstance(outcome, ServiceResult)
        assert outcome.trace.status == "ok"
        assert outcome.trace.attempts == 3
        assert len(outcome.trace.faults) == 2
        assert all("TransientFaultError" in entry for entry in outcome.trace.faults)
        assert stats.retries == 2 and stats.completed == 1 and stats.failed == 0
        assert plan.fired(SERVICE_EXECUTE) == 2

    def test_exhausted_attempts_surface_the_error(self, tiny_ssb):
        plan = FaultPlan([FaultPoint(site=SERVICE_EXECUTE, mode="raise", times=5)])
        policy = ResiliencePolicy(max_attempts=2, **FAST_BACKOFF)

        async def go():
            with Session(tiny_ssb, faults=plan, resilience=policy) as session:
                async with QueryService(session) as service:
                    with pytest.raises(TransientFaultError):
                        await service.submit(QUERIES["q1.1"])
                    return service.traces[-1], service.stats

        trace, stats = run(go())
        assert trace.status == "error"
        assert trace.attempts == 2
        assert len(trace.faults) == 2
        assert stats.failed == 1 and stats.retries == 1 and stats.completed == 0

    def test_retry_timing_is_the_policys(self, tiny_ssb):
        """The backoff between attempts follows ``backoff_s`` exactly."""
        plan = FaultPlan([FaultPoint(site=SERVICE_EXECUTE, mode="raise", times=1)])
        policy = ResiliencePolicy(max_attempts=2, backoff_base_s=0.08, jitter=0.0)

        async def go():
            with Session(tiny_ssb, faults=plan, resilience=policy) as session:
                async with QueryService(session) as service:
                    start = time.perf_counter()
                    outcome = await service.submit(QUERIES["q1.1"])
                    return time.perf_counter() - start, outcome

        elapsed, outcome = run(go())
        assert outcome.trace.attempts == 2
        assert elapsed >= 0.08  # the one retry waited its full backoff

    def test_ingest_is_never_retried(self, tiny_ssb):
        """Appends are not idempotent: no fault site, no retry rung."""
        plan = FaultPlan([FaultPoint(site=SERVICE_EXECUTE, mode="raise", times=5)])
        policy = ResiliencePolicy(max_attempts=3, **FAST_BACKOFF)
        from repro.ssb import generate_lineorder_batch, generate_ssb

        db = generate_ssb(scale_factor=0.005, seed=31)
        batch = generate_lineorder_batch(db, 8, seed=1)

        async def go():
            with Session(db, faults=plan, resilience=policy) as session:
                async with QueryService(session) as service:
                    ingested = await service.ingest("lineorder", batch)
                    return ingested, service.stats

        ingested, stats = run(go())
        assert ingested.version == 1
        assert ingested.trace.attempts == 1
        assert stats.retries == 0
        assert plan.fired(SERVICE_EXECUTE) == 0  # the site is query-only


class TestBreaker:
    def test_trips_degrades_probes_and_heals(self, tiny_ssb):
        # Each faulted query burns 2 arms (one per shard task); times=4 and
        # a zero shard retry budget make exactly the first two queries fall
        # back monolithically, which trips the threshold-2 breaker.
        plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode="raise", times=4)])
        policy = ResiliencePolicy(
            shard_retry_budget=0, breaker_threshold=2, breaker_probe_every=2
        )

        async def go():
            with Session(
                tiny_ssb, shard_start_method="fork", faults=plan,
                resilience=policy, cache=False,
            ) as session:
                async with QueryService(session, shards=2, max_inflight=1) as service:
                    planes, opens = [], []
                    for _ in range(5):
                        outcome = await service.submit(QUERIES["q1.1"])
                        planes.append(outcome.trace.plane)
                        opens.append(service.breaker_open)
                    return planes, opens, service.stats

        planes, opens, stats = run(go())
        assert planes == [
            "monolithic-fallback",   # shard plane fails, ladder answers anyway
            "monolithic-fallback",   # second failure reaches the threshold
            "monolithic-breaker",    # breaker now routes to shards=1 up front
            "sharded",               # probe dispatch at full width succeeds...
            "sharded",               # ...and the healed breaker stays closed
        ]
        assert opens == [False, True, True, False, False]
        assert stats.breaker_trips == 1
        assert stats.completed == 5 and stats.failed == 0

    def test_breaker_answers_stay_correct_throughout(self, tiny_ssb):
        plan = FaultPlan([FaultPoint(site=SHARD_TASK, mode="raise", times=4)])
        policy = ResiliencePolicy(
            shard_retry_budget=0, breaker_threshold=2, breaker_probe_every=2
        )
        expected, _ = execute_query_monolithic(tiny_ssb, QUERIES["q3.1"])

        async def go():
            with Session(
                tiny_ssb, shard_start_method="fork", faults=plan,
                resilience=policy, cache=False,
            ) as session:
                async with QueryService(session, shards=2, max_inflight=1) as service:
                    return [
                        (await service.submit(QUERIES["q3.1"])).result.result.value
                        for _ in range(5)
                    ]

        values = run(go())
        assert all(value == expected for value in values)
