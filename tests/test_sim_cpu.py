"""Tests for the CPU performance simulator."""

import pytest

from repro.hardware.counters import TrafficCounter
from repro.hardware.presets import INTEL_I7_6900


class TestBandwidthPrimitives:
    def test_sequential_read_time(self, cpu_sim):
        # 53 GB at 53 GBps is one second.
        assert cpu_sim.sequential_read_seconds(53e9) == pytest.approx(1.0)

    def test_non_temporal_writes_are_faster(self, cpu_sim):
        regular = cpu_sim.sequential_write_seconds(1e9, non_temporal=False)
        streaming = cpu_sim.sequential_write_seconds(1e9, non_temporal=True)
        assert streaming < regular

    def test_zero_bytes_is_free(self, cpu_sim):
        assert cpu_sim.sequential_read_seconds(0) == 0.0
        assert cpu_sim.sequential_write_seconds(0) == 0.0


class TestComputeAndBranches:
    def test_simd_speeds_up_compute(self, cpu_sim):
        scalar = cpu_sim.compute_seconds(1e9, simd=False)
        simd = cpu_sim.compute_seconds(1e9, simd=True)
        assert simd == pytest.approx(scalar / INTEL_I7_6900.simd_lanes_32bit)

    def test_branch_penalty_scales_with_miss_rate(self, cpu_sim):
        low = cpu_sim.branch_miss_seconds(1e9, miss_rate=0.1)
        high = cpu_sim.branch_miss_seconds(1e9, miss_rate=0.5)
        assert high > low > 0.0
        assert cpu_sim.branch_miss_seconds(1e9, miss_rate=0.0) == 0.0


class TestRandomAccess:
    def test_service_level_depends_on_working_set(self, cpu_sim):
        _, level_small = cpu_sim.random_access_seconds(1e6, 64 * 1024)
        _, level_mid = cpu_sim.random_access_seconds(1e6, 4 * 2**20)
        _, level_large = cpu_sim.random_access_seconds(1e6, 256 * 2**20)
        assert level_small == "L2"
        assert level_mid == "L3"
        assert level_large == "DRAM"

    def test_larger_working_sets_are_slower(self, cpu_sim):
        t_small, _ = cpu_sim.random_access_seconds(1e7, 64 * 1024)
        t_mid, _ = cpu_sim.random_access_seconds(1e7, 4 * 2**20)
        t_large, _ = cpu_sim.random_access_seconds(1e7, 256 * 2**20)
        assert t_small < t_mid < t_large

    def test_dependent_probes_are_slower(self, cpu_sim):
        independent, _ = cpu_sim.random_access_seconds(1e7, 4 * 2**20, dependent=False)
        dependent, _ = cpu_sim.random_access_seconds(1e7, 4 * 2**20, dependent=True)
        assert dependent > independent

    def test_random_efficiency_override(self, cpu_sim):
        slow, _ = cpu_sim.random_access_seconds(1e7, 1 << 30, random_efficiency=0.5)
        fast, _ = cpu_sim.random_access_seconds(1e7, 1 << 30, random_efficiency=0.9)
        assert fast < slow

    def test_zero_accesses_are_free(self, cpu_sim):
        assert cpu_sim.random_access_seconds(0, 1 << 30) == (0.0, "none")


class TestRunOperator:
    def test_bandwidth_bound_operator(self, cpu_sim):
        traffic = TrafficCounter(sequential_read_bytes=53e9)
        execution = cpu_sim.run(traffic)
        assert execution.seconds == pytest.approx(1.0, rel=0.01)

    def test_compute_bound_operator(self, cpu_sim):
        # Tiny memory traffic but an enormous amount of scalar math.
        traffic = TrafficCounter(sequential_read_bytes=1e6, compute_ops=1e12)
        execution = cpu_sim.run(traffic, use_simd=False)
        assert execution.seconds > 10.0

    def test_simd_turns_compute_bound_into_bandwidth_bound(self, cpu_sim):
        traffic = TrafficCounter(sequential_read_bytes=5.3e9, compute_ops=2e10)
        scalar = cpu_sim.run(traffic, use_simd=False)
        simd = cpu_sim.run(traffic, use_simd=True)
        assert simd.seconds < scalar.seconds

    def test_dram_random_traffic_adds_to_streaming(self, cpu_sim):
        streaming_only = cpu_sim.run(TrafficCounter(sequential_read_bytes=5.3e9))
        with_probes = cpu_sim.run(
            TrafficCounter(
                sequential_read_bytes=5.3e9,
                random_accesses=5e7,
                random_working_set_bytes=1 << 30,
            )
        )
        assert with_probes.seconds > streaming_only.seconds * 1.5

    def test_cache_resident_probes_overlap_with_streaming(self, cpu_sim):
        streaming_only = cpu_sim.run(TrafficCounter(sequential_read_bytes=5.3e9))
        with_probes = cpu_sim.run(
            TrafficCounter(
                sequential_read_bytes=5.3e9,
                random_accesses=1e6,
                random_working_set_bytes=64 * 1024,
            )
        )
        assert with_probes.seconds == pytest.approx(streaming_only.seconds, rel=0.05)

    def test_fewer_cores_reduce_streaming_bandwidth(self, cpu_sim):
        traffic = TrafficCounter(sequential_read_bytes=53e9)
        all_cores = cpu_sim.run(traffic, cores=8)
        few_cores = cpu_sim.run(traffic, cores=2)
        assert few_cores.seconds > all_cores.seconds

    def test_execution_records_configuration(self, cpu_sim):
        execution = cpu_sim.run(TrafficCounter(sequential_read_bytes=1e6), use_simd=True, label="x")
        assert execution.used_simd is True
        assert execution.label == "x"
        assert execution.cores_used == INTEL_I7_6900.cores
