"""Tests for the hash-join and radix-sort operators (Sections 4.3 and 4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ops.cpu import (
    cpu_group_by_aggregate,
    cpu_hash_join_build,
    cpu_hash_join_probe,
    cpu_radix_partition,
    cpu_radix_sort,
)
from repro.ops.cpu.radix_partition import radix_of
from repro.ops.gpu import (
    gpu_group_by_aggregate,
    gpu_hash_join_build,
    gpu_hash_join_probe,
    gpu_radix_partition,
    gpu_radix_sort,
)
from repro.ops.gpu.radix_sort import _pass_plan


@pytest.fixture(scope="module")
def join_data():
    rng = np.random.default_rng(21)
    build_keys = np.arange(4096)
    build_values = rng.integers(0, 1000, 4096)
    probe_keys = rng.integers(0, 8192, 1 << 15)  # ~half the probes match
    probe_values = rng.integers(0, 1000, 1 << 15)
    matched = probe_keys < 4096
    expected = float(np.sum(probe_values[matched] + build_values[probe_keys[matched]]))
    return build_keys, build_values, probe_keys, probe_values, expected


class TestHashJoin:
    def test_cpu_build_stats(self, join_data):
        build_keys, build_values, *_ = join_data
        table, result = cpu_hash_join_build(build_keys, build_values)
        assert result.stat("build_rows") == len(build_keys)
        assert result.stat("hash_table_bytes") == table.size_bytes

    @pytest.mark.parametrize("variant", ["scalar", "simd", "prefetch"])
    def test_cpu_probe_checksum(self, join_data, variant):
        build_keys, build_values, probe_keys, probe_values, expected = join_data
        table, _ = cpu_hash_join_build(build_keys, build_values)
        result = cpu_hash_join_probe(probe_keys, probe_values, table, variant)
        assert result.value == pytest.approx(expected)
        assert result.stat("match_rate") == pytest.approx(0.5, abs=0.05)

    def test_gpu_probe_checksum(self, join_data):
        build_keys, build_values, probe_keys, probe_values, expected = join_data
        table, _ = gpu_hash_join_build(build_keys, build_values)
        result = gpu_hash_join_probe(probe_keys, probe_values, table)
        assert result.value == pytest.approx(expected)

    def test_unknown_variant(self, join_data):
        build_keys, build_values, probe_keys, probe_values, _ = join_data
        table, _ = cpu_hash_join_build(build_keys, build_values)
        with pytest.raises(ValueError):
            cpu_hash_join_probe(probe_keys, probe_values, table, "radix")

    def test_misaligned_probe_columns(self, join_data):
        build_keys, build_values, *_ = join_data
        table, _ = cpu_hash_join_build(build_keys, build_values)
        with pytest.raises(ValueError):
            cpu_hash_join_probe(np.arange(4), np.arange(5), table)

    def test_simd_probe_is_not_faster_than_scalar(self, join_data):
        """Paper Figure 13: vertical vectorization does not pay off."""
        build_keys, build_values, probe_keys, probe_values, _ = join_data
        table, _ = cpu_hash_join_build(build_keys, build_values)
        scalar = cpu_hash_join_probe(probe_keys, probe_values, table, "scalar")
        simd = cpu_hash_join_probe(probe_keys, probe_values, table, "simd")
        assert simd.seconds >= scalar.seconds

    def test_gpu_probe_slows_down_with_larger_tables(self):
        rng = np.random.default_rng(9)
        probe_keys = rng.integers(0, 1024, 1 << 14)
        probe_values = rng.integers(0, 10, 1 << 14)
        small_table, _ = gpu_hash_join_build(np.arange(1024), np.arange(1024))
        big_table, _ = gpu_hash_join_build(np.arange(1 << 20), np.arange(1 << 20))
        small = gpu_hash_join_probe(probe_keys, probe_values, small_table)
        big = gpu_hash_join_probe(probe_keys, probe_values, big_table)
        assert big.traffic.random_working_set_bytes > small.traffic.random_working_set_bytes


class TestGroupByAggregate:
    def test_cpu_and_gpu_agree(self):
        rng = np.random.default_rng(31)
        keys = rng.integers(0, 10, 10_000)
        values = rng.integers(0, 100, 10_000)
        cpu = cpu_group_by_aggregate(keys, values)
        gpu = gpu_group_by_aggregate(keys, values)
        assert cpu.value == gpu.value
        expected = {int(k): float(values[keys == k].sum()) for k in np.unique(keys)}
        assert cpu.value == expected

    def test_composite_keys(self):
        keys_a = np.array([1, 1, 2, 2])
        keys_b = np.array([0, 1, 0, 0])
        values = np.array([10, 20, 30, 40])
        result = cpu_group_by_aggregate((keys_a, keys_b), values)
        assert result.value == {(1, 0): 10.0, (1, 1): 20.0, (2, 0): 70.0}

    def test_empty_input(self):
        result = cpu_group_by_aggregate(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert result.value == {}

    def test_misaligned_keys(self):
        with pytest.raises(ValueError):
            gpu_group_by_aggregate(np.arange(3), np.arange(4))


class TestRadixPartition:
    def test_radix_extraction(self):
        keys = np.array([0b1011_0110])
        assert radix_of(keys, 4, 0)[0] == 0b0110
        assert radix_of(keys, 4, 4)[0] == 0b1011

    def test_cpu_partition_orders_by_radix_and_is_stable(self):
        rng = np.random.default_rng(41)
        keys = rng.integers(0, 256, 5000, dtype=np.int32)
        payloads = np.arange(5000, dtype=np.int32)
        output, _, _ = cpu_radix_partition(keys, payloads, radix_bits=4, start_bit=0)
        radix = radix_of(output.keys, 4, 0)
        assert np.all(np.diff(radix) >= 0)
        # Stability: payloads within the same radix keep their input order.
        for value in range(16):
            assert np.all(np.diff(output.payloads[radix == value]) > 0)

    def test_partition_offsets_match_histogram(self):
        keys = np.arange(64, dtype=np.int32)
        output, hist_result, _ = cpu_radix_partition(keys, radix_bits=3)
        histogram = hist_result.value
        assert histogram.sum() == 64
        assert np.array_equal(output.partition_offsets, np.cumsum(np.concatenate([[0], histogram[:-1]])))

    def test_gpu_partition_matches_cpu(self):
        rng = np.random.default_rng(43)
        keys = rng.integers(0, 1 << 16, 4096, dtype=np.int32)
        cpu_out, _, _ = cpu_radix_partition(keys, radix_bits=6)
        gpu_out, _, _ = gpu_radix_partition(keys, radix_bits=6)
        assert np.array_equal(cpu_out.keys, gpu_out.keys)

    def test_gpu_stable_bit_limit(self):
        keys = np.arange(16, dtype=np.int32)
        with pytest.raises(ValueError):
            gpu_radix_partition(keys, radix_bits=8, stable=True)
        with pytest.raises(ValueError):
            gpu_radix_partition(keys, radix_bits=9, stable=False)

    def test_cpu_shuffle_knee_beyond_eight_bits(self):
        """Figure 14b: the CPU shuffle falls off the plateau past 8 radix bits."""
        rng = np.random.default_rng(47)
        keys = rng.integers(0, 2**31, 1 << 16, dtype=np.int32)
        _, _, shuffle8 = cpu_radix_partition(keys, radix_bits=8)
        _, _, shuffle11 = cpu_radix_partition(keys, radix_bits=11)
        assert shuffle11.seconds > shuffle8.seconds * 1.2


class TestRadixSort:
    def test_pass_plans_match_paper(self):
        assert _pass_plan(32, 8) == [8, 8, 8, 8]
        assert _pass_plan(32, 7) == [6, 6, 6, 7, 7]

    def test_cpu_sort_correctness(self):
        rng = np.random.default_rng(53)
        keys = rng.integers(0, 2**31, 1 << 14, dtype=np.int64)
        payloads = np.arange(1 << 14)
        result = cpu_radix_sort(keys, payloads)
        sorted_keys, sorted_payloads = result.value
        order = np.argsort(keys, kind="stable")
        assert np.array_equal(sorted_keys, keys[order])
        assert np.array_equal(sorted_payloads, payloads[order])

    @pytest.mark.parametrize("variant", ["msb", "lsb"])
    def test_gpu_sort_correctness(self, variant):
        rng = np.random.default_rng(59)
        keys = rng.integers(0, 2**31, 1 << 14, dtype=np.int64)
        result = gpu_radix_sort(keys, variant=variant)
        assert np.array_equal(result.value[0], np.sort(keys))

    def test_msb_uses_fewer_passes_than_lsb(self):
        keys = np.arange(1 << 12)
        msb = gpu_radix_sort(keys, variant="msb")
        lsb = gpu_radix_sort(keys, variant="lsb")
        assert msb.stat("passes") == 4
        assert lsb.stat("passes") == 5
        assert msb.seconds < lsb.seconds

    def test_gpu_sort_much_faster_than_cpu(self):
        # Large enough that the data path, not fixed kernel-launch overhead,
        # dominates the simulated time (Section 4.4's 17x gain).
        keys = np.arange(1 << 20)[::-1].copy()
        cpu = cpu_radix_sort(keys)
        gpu = gpu_radix_sort(keys)
        assert cpu.seconds / gpu.seconds > 8

    def test_rejects_negative_keys(self):
        with pytest.raises(ValueError):
            cpu_radix_sort(np.array([-1, 3]))
        with pytest.raises(ValueError):
            gpu_radix_sort(np.array([-1, 3]))

    @settings(max_examples=15, deadline=None)
    @given(keys=hnp.arrays(np.int64, st.integers(min_value=1, max_value=2000),
                           elements=st.integers(min_value=0, max_value=2**31 - 1)))
    def test_sort_is_a_permutation_and_ordered(self, keys):
        result = cpu_radix_sort(keys)
        sorted_keys, _ = result.value
        assert np.array_equal(sorted_keys, np.sort(keys))
