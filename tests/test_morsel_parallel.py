"""Morsel-parallel batch execution and thread-safe caches.

``Session.run_many(workers=N)`` partitions a batch across a thread pool:
each query is one morsel, workers pull morsels as they free up, and every
worker shares the session's lock-protected caches.  The contract under
test: results identical to serial execution (values *and* simulated
times, in input order), and -- with ``share_builds=True`` -- each distinct
dimension build constructed exactly once no matter how the batch lands on
the workers.
"""

import dataclasses
import threading

import pytest

from repro.api import Session
from repro.engine.cache import BuildArtifactCache, ExecutionCache
from repro.engine.physical import lower_query
from repro.ssb.queries import QUERIES, QUERY_ORDER, FilterSpec

#: A query that prepares fine but blows up at execution time (the column
#: only goes missing once the scan actually touches the fact table).
BROKEN = dataclasses.replace(
    QUERIES["q1.1"], name="q_broken", fact_filters=(FilterSpec("lo_nope", "eq", 1),)
)


def _distinct_builds(queries):
    return {b.key for q in queries for b in lower_query(q).builds}


class TestThreadedRunMany:
    def test_matches_serial_results(self, tiny_ssb):
        queries = [QUERIES[name] for name in QUERY_ORDER]
        serial = Session(tiny_ssb, cache=False).run_many(queries, engine="cpu")
        threaded = Session(tiny_ssb, cache=False).run_many(
            queries, engine="cpu", workers=4, oversubscribe=True
        )
        assert len(threaded) == len(serial)
        for a, b in zip(serial, threaded):
            assert a.query == b.query  # input order preserved
            assert a.value == b.value
            assert a.simulated_ms == b.simulated_ms

    def test_matches_serial_with_shared_builds(self, tiny_ssb):
        queries = [QUERIES[name] for name in QUERY_ORDER] * 2
        serial = Session(tiny_ssb, cache=False).run_many(queries, engine="cpu", share_builds=True)
        threaded = Session(tiny_ssb, cache=False).run_many(
            queries, engine="cpu", share_builds=True, workers=4, oversubscribe=True
        )
        for a, b in zip(serial, threaded):
            assert a.value == b.value
            assert a.simulated_ms == b.simulated_ms

    @pytest.mark.parametrize("round_", range(5))
    def test_hammer_exactly_once_builds(self, tiny_ssb, round_):
        """Repeated fresh 26-query batches: one miss per distinct artifact."""
        queries = [QUERIES[name] for name in QUERY_ORDER] * 2
        session = Session(tiny_ssb, cache=False)
        session.run_many(queries, engine="cpu", share_builds=True, workers=4, oversubscribe=True)
        info = session.cache_info("builds")
        distinct = _distinct_builds(queries)
        assert info.misses == len(distinct)
        assert info.size == len(distinct)
        total_joins = sum(len(q.joins) for q in queries)
        assert info.hits + info.misses == total_joins

    def test_small_build_cache_grows_to_fit_threaded_batch(self, tiny_ssb):
        """Exactly-once survives an undersized LRU in the threaded path too."""
        queries = [QUERIES[name] for name in QUERY_ORDER]
        session = Session(tiny_ssb, cache=False, build_cache_size=1)
        session.run_many(queries, engine="cpu", share_builds=True, workers=4, oversubscribe=True)
        info = session.cache_info("builds")
        distinct = _distinct_builds(queries)
        assert info.misses == len(distinct)
        assert info.maxsize >= len(distinct)

    def test_workers_with_execution_cache(self, tiny_ssb):
        """Duplicate queries in a threaded batch still agree with serial."""
        queries = [QUERIES["q2.1"], QUERIES["q2.1"], QUERIES["q3.1"], QUERIES["q2.1"]]
        session = Session(tiny_ssb)
        results = session.run_many(queries, engine="cpu", workers=4, oversubscribe=True)
        reference = Session(tiny_ssb).run(QUERIES["q2.1"], engine="cpu")
        for result in (results[0], results[1], results[3]):
            assert result.value == reference.value
            assert result.simulated_ms == reference.simulated_ms

    def test_invalid_workers_rejected(self, tiny_ssb):
        with pytest.raises(ValueError, match="workers"):
            Session(tiny_ssb).run_many([QUERIES["q1.1"]], engine="cpu", workers=0)

    def test_bad_engine_fails_fast(self, tiny_ssb):
        session = Session(tiny_ssb)
        with pytest.raises(KeyError, match="unknown engine"):
            session.run_many(
                [QUERIES["q1.1"]], engine="gpx", workers=4, share_builds=True, oversubscribe=True
            )
        assert session.cache_info("builds").size == 0

    def test_single_worker_equals_workers_kwarg_absent(self, tiny_ssb):
        queries = [QUERIES["q1.1"], QUERIES["q2.1"]]
        default = Session(tiny_ssb, cache=False).run_many(queries, engine="cpu")
        explicit = Session(tiny_ssb, cache=False).run_many(queries, engine="cpu", workers=1)
        for a, b in zip(default, explicit):
            assert a.value == b.value

    def test_pool_capped_at_cpu_count(self, tiny_ssb, monkeypatch):
        """Morsel pools size to the hardware: no pool on a 1-core machine."""
        import repro.api.session as session_module

        monkeypatch.setattr(session_module.os, "cpu_count", lambda: 1)
        session = Session(tiny_ssb, cache=False)
        called = []
        original = session._run_many_threaded
        monkeypatch.setattr(
            session, "_run_many_threaded", lambda *a, **k: called.append(1) or original(*a, **k)
        )
        results = session.run_many([QUERIES["q1.1"]], engine="cpu", workers=8)
        assert not called  # clamped to 1 worker -> serial path, no pool
        assert results[0].value is not None
        session.run_many([QUERIES["q1.1"]], engine="cpu", workers=8, oversubscribe=True)
        assert called  # oversubscribe forces the requested pool size


class TestErrorPropagation:
    """A failing morsel must surface -- never hang the pool or scramble order."""

    BATCH = [QUERIES["q1.1"], BROKEN, QUERIES["q2.1"], QUERIES["q3.1"]]

    def test_threaded_failure_raises_without_deadlock(self, tiny_ssb):
        session = Session(tiny_ssb, cache=False)
        with pytest.raises(KeyError, match="lo_nope"):
            session.run_many(self.BATCH, engine="cpu", workers=4, oversubscribe=True)
        # The pool drained cleanly: the same session keeps working.
        results = session.run_many([QUERIES["q1.1"]], engine="cpu", workers=4, oversubscribe=True)
        assert results[0].value is not None

    def test_threaded_return_exceptions_keeps_survivors_in_order(self, tiny_ssb):
        serial = Session(tiny_ssb, cache=False).run_many(
            [q for q in self.BATCH if q.name != "q_broken"], engine="cpu"
        )
        mixed = Session(tiny_ssb, cache=False).run_many(
            self.BATCH, engine="cpu", workers=4, oversubscribe=True, return_exceptions=True
        )
        assert isinstance(mixed[1], KeyError)
        survivors = [mixed[0], mixed[2], mixed[3]]
        for got, expected in zip(survivors, serial):
            assert got.query == expected.query  # input order preserved
            assert got.value == expected.value
            assert got.simulated_ms == expected.simulated_ms

    @pytest.mark.parametrize("kwargs", [{}, {"share_builds": True}])
    def test_serial_paths_honor_return_exceptions(self, tiny_ssb, kwargs):
        session = Session(tiny_ssb, cache=False)
        with pytest.raises(KeyError, match="lo_nope"):
            session.run_many(self.BATCH, engine="cpu", **kwargs)
        mixed = session.run_many(self.BATCH, engine="cpu", return_exceptions=True, **kwargs)
        assert isinstance(mixed[1], KeyError)
        assert [r.query for i, r in enumerate(mixed) if i != 1] == ["q1.1", "q2.1", "q3.1"]

    def test_first_failure_in_input_order_is_what_raises(self, tiny_ssb):
        other = dataclasses.replace(BROKEN, name="q_broken2")
        batch = [BROKEN, QUERIES["q1.1"], other]
        mixed = Session(tiny_ssb, cache=False).run_many(
            batch, engine="cpu", workers=4, oversubscribe=True, return_exceptions=True
        )
        assert isinstance(mixed[0], KeyError) and isinstance(mixed[2], KeyError)
        assert mixed[1].value is not None


class TestBuildArtifactCacheConcurrency:
    def test_racing_fetches_build_exactly_once(self, tiny_ssb):
        """N threads slam one key; the build body runs once."""
        cache = BuildArtifactCache(tiny_ssb)
        constructions = []
        barrier = threading.Barrier(8)
        release = threading.Event()

        def slow_build():
            constructions.append(threading.get_ident())
            release.wait(timeout=5)  # hold every waiter in the in-flight path
            return object()

        results = [None] * 8

        def worker(i):
            barrier.wait(timeout=5)
            if i == 0:
                results[i] = cache.fetch(tiny_ssb, "shared-key", slow_build)
            else:
                # Give the owner a head start, then pile on.
                results[i] = cache.fetch(tiny_ssb, "shared-key", slow_build)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert len(constructions) == 1
        assert all(r is results[0] for r in results)
        assert cache.info().misses == 1
        assert cache.info().hits == 7

    def test_failed_build_releases_waiters(self, tiny_ssb):
        cache = BuildArtifactCache(tiny_ssb)
        attempts = []

        def failing_then_ok():
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("flaky build")
            return "artifact"

        with pytest.raises(RuntimeError, match="flaky build"):
            cache.fetch(tiny_ssb, "key", failing_then_ok)
        # The in-flight slot was cleaned up: the next fetch owns a new build.
        assert cache.fetch(tiny_ssb, "key", failing_then_ok) == "artifact"
        assert cache.info().misses == 2

    def test_distinct_keys_build_in_parallel(self, tiny_ssb):
        """The lock guards the LRU, not the build work itself."""
        cache = BuildArtifactCache(tiny_ssb)
        inside = threading.Barrier(2)

        def build():
            # Both builders must be inside their build() bodies at once; a
            # cache that held its lock across build() would deadlock here.
            inside.wait(timeout=5)
            return object()

        threads = [
            threading.Thread(target=cache.fetch, args=(tiny_ssb, key, build))
            for key in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads)
        assert cache.info().misses == 2


class TestExecutionCacheConcurrency:
    def test_concurrent_fetches_stay_consistent(self, tiny_ssb):
        cache = ExecutionCache(tiny_ssb, maxsize=4)
        names = sorted(QUERIES)
        errors = []

        def worker():
            try:
                for name in names:
                    value, profile = cache.fetch(
                        tiny_ssb,
                        QUERIES[name],
                        lambda db, q: (("value", q.name), ("profile", q.name)),
                    )
                    assert value == ("value", name)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        info = cache.info()
        assert info.size <= 4
        assert info.hits + info.misses == 6 * len(names)
