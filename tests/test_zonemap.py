"""The pruned, compression-aware scan plane (zone maps + packed gathers).

Zone-map data skipping may only ever *remove work*, never change results:
the differential suites here hold the pruned plane byte-identical (answers
and profiles) to both the PR 4 selection-vector plane and the seed
monolithic executor, on uniform and on date-clustered data.  The folding
logic is additionally property-tested for soundness: a zone classified
take-all must contain only satisfying rows, a skipped zone none.
"""

import numpy as np
import pytest

from repro.api import Q, Session, col
from repro.engine.cache import ZoneMapCache, activate_zones
from repro.engine.physical import BuildLookup, lower_query
from repro.engine.plan import execute_query, execute_query_monolithic
from repro.ssb import generate_lineorder_batch, generate_ssb
from repro.ssb.queries import QUERIES, FilterSpec, JoinSpec, SSBQuery
from repro.storage import Table
from repro.storage.zonemap import (
    ZONE_EVALUATE,
    ZONE_SKIP,
    ZONE_TAKE,
    ColumnZoneStats,
    TableZoneMaps,
    cluster_by,
    zone_rows,
)


@pytest.fixture(scope="module")
def clustered_ssb(tiny_ssb):
    """tiny_ssb with the fact table clustered by its date key."""
    return cluster_by(tiny_ssb, "lineorder", "lo_orderdate")


OR_TREES = [
    col("lo_discount").between(1, 3) | (col("lo_quantity") > 45),
    (col("lo_discount") == 1) | (col("lo_discount") == 2) | (col("lo_quantity") < 5),
    ~(col("lo_quantity") < 25) & (col("lo_discount") >= 2),
    (col("lo_discount") <= 2) & ((col("lo_quantity") < 10) | (col("lo_quantity") > 40)),
]


def _assert_identical(db, query):
    value_mono, profile_mono = execute_query_monolithic(db, query)
    value_plain, profile_plain = execute_query(db, query)
    with activate_zones(ZoneMapCache(db)):
        value_zone, profile_zone = execute_query(db, query)
    assert value_plain == value_mono
    assert profile_plain == profile_mono
    assert value_zone == value_mono
    assert profile_zone == profile_mono


# ----------------------------------------------------------------------
# Differential: pruned plane vs selection vectors vs monolithic reference
# ----------------------------------------------------------------------


class TestZonePlaneParity:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_all_13_queries_uniform(self, tiny_ssb, name):
        _assert_identical(tiny_ssb, QUERIES[name])

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_all_13_queries_date_clustered(self, clustered_ssb, name):
        _assert_identical(clustered_ssb, QUERIES[name])

    @pytest.mark.parametrize("index", range(len(OR_TREES)))
    def test_or_trees(self, clustered_ssb, index):
        query = (
            Q("lineorder")
            .where(OR_TREES[index])
            .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
            .group_by("d_year")
            .agg("sum", "lo_extendedprice", "lo_discount", combine="mul")
            .build(clustered_ssb)
        )
        _assert_identical(clustered_ssb, query)

    def test_clustered_date_band_prunes_and_matches(self, clustered_ssb):
        """A fact-local date band is the classic zone-map case: most zones skip."""
        query = (
            Q("lineorder")
            .where(col("lo_orderdate").between(19940101, 19940301))
            .join("supplier", on=("lo_suppkey", "s_suppkey"), payload="s_region")
            .group_by("s_region")
            .agg("sum", "lo_revenue")
            .build(clustered_ssb)
        )
        cache = ZoneMapCache(clustered_ssb)
        with activate_zones(cache):
            value_zone, profile_zone = execute_query(clustered_ssb, query)
        value_mono, profile_mono = execute_query_monolithic(clustered_ssb, query)
        assert value_zone == value_mono
        assert profile_zone == profile_mono
        info = cache.info()
        assert info.zones_skipped > 0
        assert info.rows_pruned > 0

    def test_empty_selection(self, clustered_ssb):
        query = (
            Q("lineorder")
            .where(col("lo_quantity") > 10_000)
            .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
            .group_by("d_year")
            .agg("sum", "lo_revenue")
            .build(clustered_ssb)
        )
        with activate_zones(ZoneMapCache(clustered_ssb)):
            value, _ = execute_query(clustered_ssb, query)
        assert value == {}

    def test_empty_dimension_build_skips_everything(self, tiny_ssb):
        """A dimension predicate selecting no rows prunes the whole probe."""
        query = (
            Q("lineorder")
            .join(
                "date",
                on=("lo_orderdate", "d_datekey"),
                filters=col("d_year") == 1890,  # no such year
                payload="d_year",
            )
            .group_by("d_year")
            .agg("sum", "lo_revenue")
            .build(tiny_ssb)
        )
        cache = ZoneMapCache(tiny_ssb)
        with activate_zones(cache):
            value_zone, profile_zone = execute_query(tiny_ssb, query)
        value_mono, profile_mono = execute_query_monolithic(tiny_ssb, query)
        assert value_zone == value_mono == {}
        assert profile_zone == profile_mono
        assert cache.info().rows_pruned == tiny_ssb.table("lineorder").num_rows

    @pytest.mark.parametrize("op", ["sum", "count", "min", "max", "avg"])
    def test_every_aggregate_op(self, clustered_ssb, op):
        builder = (
            Q("lineorder")
            .where(col("lo_orderdate") < 19930601)
            .join("supplier", on=("lo_suppkey", "s_suppkey"), payload="s_region")
            .group_by("s_region")
        )
        builder = builder.agg(op) if op == "count" else builder.agg(op, "lo_revenue")
        _assert_identical(clustered_ssb, builder.build(clustered_ssb))

    def test_snowflake_spec_still_rejected(self, tiny_ssb):
        """Snowflake lowering stays NotImplemented, zones active or not."""
        query = SSBQuery(
            name="snowflake",
            flight=0,
            fact_filters=(),
            joins=(
                JoinSpec("supplier", "lo_suppkey", "s_suppkey", ()),
                JoinSpec("customer", "s_suppkey", "c_custkey", (), source="supplier"),
            ),
            group_by=(),
            aggregate=QUERIES["q1.1"].aggregate,
        )
        with activate_zones(ZoneMapCache(tiny_ssb)):
            with pytest.raises(NotImplementedError, match="snowflake"):
                lower_query(query, tiny_ssb)

    def test_type_error_parity(self, tiny_ssb):
        """A bad constant raises identically -- folding must not hide it."""
        query = (
            Q("lineorder")
            .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
            .group_by("d_year")
            .agg("sum", "lo_revenue")
            .build(tiny_ssb)
        )
        bad = SSBQuery(
            name="bad-constant",
            flight=0,
            fact_filters=(FilterSpec("lo_quantity", "lt", "twenty"),),
            joins=query.joins,
            group_by=query.group_by,
            aggregate=query.aggregate,
        )
        with pytest.raises(TypeError, match="string constant"):
            execute_query_monolithic(tiny_ssb, bad)
        with activate_zones(ZoneMapCache(tiny_ssb)):
            with pytest.raises(TypeError, match="string constant"):
                execute_query(tiny_ssb, bad)


# ----------------------------------------------------------------------
# Fold soundness: classifications must be provable, never speculative
# ----------------------------------------------------------------------


class TestFoldSoundness:
    @pytest.fixture(scope="class")
    def skewed(self):
        rng = np.random.default_rng(42)
        n = 40_000
        ramp = np.sort(rng.integers(0, 500, n))  # clustered: zones have tight ranges
        tiny = rng.integers(0, 9, n)  # bitset domain
        wide = rng.integers(-1000, 1000, n)
        return Table.from_arrays(
            "skewed",
            {
                "ramp": ramp.astype(np.int32),
                "tiny": tiny.astype(np.int32),
                "wide": wide.astype(np.int32),
            },
        )

    PREDS = [
        col("ramp") < 100,
        col("ramp") >= 250,
        col("ramp").between(100, 120),
        col("ramp") == 0,
        col("ramp") != 0,
        col("tiny").isin([0, 3, 7]),
        col("tiny") == 4,
        ~(col("tiny") == 4),
        (col("ramp") < 50) | (col("ramp") > 450),
        (col("ramp").between(0, 200)) & (col("tiny") != 2),
        ~(col("ramp").between(100, 400)),
        (col("wide") < 0) | (col("tiny").isin([1, 2])),
    ]

    @pytest.mark.parametrize("index", range(len(PREDS)))
    def test_classification_is_sound(self, skewed, index):
        from repro.engine.expr import evaluate_pred

        pred = self.PREDS[index]
        maps = TableZoneMaps(skewed, zone_size=1024)
        cls = maps.classify(pred)
        mask = evaluate_pred(skewed, pred)
        if cls is None:
            return  # statistics silent: always sound
        for zone in range(maps.num_zones):
            lo = zone * 1024
            hi = min(lo + 1024, skewed.num_rows)
            if cls[zone] == ZONE_TAKE:
                assert mask[lo:hi].all(), f"take-all zone {zone} has a non-matching row"
            elif cls[zone] == ZONE_SKIP:
                assert not mask[lo:hi].any(), f"skipped zone {zone} has a matching row"

    def test_take_and_skip_actually_fire(self, skewed):
        maps = TableZoneMaps(skewed, zone_size=1024)
        cls = maps.classify(col("ramp") < 250)
        assert cls is not None
        assert (cls == ZONE_TAKE).any()
        assert (cls == ZONE_SKIP).any()
        assert (cls == ZONE_EVALUATE).any()

    def test_empty_and_or_identities(self, skewed):
        from repro.ssb.queries import And, Or

        maps = TableZoneMaps(skewed, zone_size=1024)
        all_true = maps.classify(And())
        assert all_true is not None and (all_true == ZONE_TAKE).all()
        none_true = maps.classify(Or())
        assert none_true is not None and (none_true == ZONE_SKIP).all()

    def test_non_integer_column_is_silent(self):
        table = Table.from_arrays("floats", {"f": np.linspace(0.0, 1.0, 5000)})
        maps = TableZoneMaps(table, zone_size=1024)
        assert maps.stats("f") is None
        assert maps.classify(col("f") < 0.5) is None

    def test_encoded_constants_resolve_before_folding(self, tiny_ssb):
        date = tiny_ssb.table("date")
        maps = TableZoneMaps(date, zone_size=64)
        spec = FilterSpec("d_yearmonth", "eq", "Dec1997", encoded=True)
        cls = maps.classify(spec)
        from repro.engine.expr import evaluate_pred

        mask = evaluate_pred(date, spec)
        if cls is not None:
            for zone in range(maps.num_zones):
                lo, hi = zone * 64, min(zone * 64 + 64, date.num_rows)
                if cls[zone] == ZONE_SKIP:
                    assert not mask[lo:hi].any()
                elif cls[zone] == ZONE_TAKE:
                    assert mask[lo:hi].all()


# ----------------------------------------------------------------------
# Zone statistics and geometry helpers
# ----------------------------------------------------------------------


class TestZoneStats:
    def test_min_max_match_brute_force(self, rng):
        values = rng.integers(-500, 500, 10_000).astype(np.int32)
        stats = ColumnZoneStats.build("v", values, 256)
        for zone in range(stats.num_zones):
            chunk = values[zone * 256 : (zone + 1) * 256]
            assert stats.mins[zone] == chunk.min()
            assert stats.maxs[zone] == chunk.max()

    def test_bitsets_exact_for_tiny_domain(self, rng):
        values = rng.integers(3, 20, 5_000).astype(np.int32)
        stats = ColumnZoneStats.build("v", values, 512)
        assert stats.bitsets is not None
        for zone in range(stats.num_zones):
            chunk = values[zone * 512 : (zone + 1) * 512]
            expected = np.uint64(0)
            for v in np.unique(chunk):
                expected |= np.uint64(1) << np.uint64(int(v) - stats.low)
            assert stats.bitsets[zone] == expected

    def test_wide_domain_has_no_bitsets(self, rng):
        values = rng.integers(0, 100_000, 5_000).astype(np.int32)
        stats = ColumnZoneStats.build("v", values, 512)
        assert stats.bitsets is None

    def test_zone_size_must_be_power_of_two(self, tiny_ssb):
        with pytest.raises(ValueError, match="power of two"):
            TableZoneMaps(tiny_ssb.table("lineorder"), zone_size=1000)

    def test_zone_rows_expansion(self):
        rows = zone_rows(np.array([0, 2, 3]), 4, 14)
        np.testing.assert_array_equal(rows, [0, 1, 2, 3, 8, 9, 10, 11, 12, 13])
        assert zone_rows(np.array([], dtype=np.int64), 4, 14).size == 0

    def test_packed_twins_only_for_small_domains(self, tiny_ssb):
        maps = TableZoneMaps(tiny_ssb.table("lineorder"))
        assert maps.packed("lo_discount") is not None  # 0..10: 4 bits
        assert maps.packed("lo_quantity") is not None  # 1..50: 6 bits
        assert maps.packed("lo_orderdate") is None  # ~25 bits
        twin = maps.packed("lo_quantity")
        np.testing.assert_array_equal(twin.unpack(), tiny_ssb.table("lineorder")["lo_quantity"])


# ----------------------------------------------------------------------
# Stats-compacted build artifacts and probe fast paths
# ----------------------------------------------------------------------


class TestCompactBuilds:
    def test_date_lookup_is_compact_under_zones(self, tiny_ssb):
        plan = lower_query(QUERIES["q2.1"])
        date_build = next(b for b in plan.builds if b.join.dimension == "date")
        dense = date_build.build(tiny_ssb)
        with activate_zones(ZoneMapCache(tiny_ssb)):
            compact = date_build.build(tiny_ssb)
        datekeys = tiny_ssb.table("date")["d_datekey"]
        assert dense.key_base == 0
        assert dense.lookup.shape[0] == int(datekeys.max()) + 1  # ~20M entries
        assert compact.key_base == int(datekeys.min())
        assert compact.lookup.shape[0] == int(datekeys.max()) - int(datekeys.min()) + 1
        # Same membership, shifted by the base.
        present_keys_dense = np.flatnonzero(dense.present)
        present_keys_compact = np.flatnonzero(compact.present) + compact.key_base
        np.testing.assert_array_equal(present_keys_dense, present_keys_compact)

    def test_key_range_recorded(self, tiny_ssb):
        join = lower_query(QUERIES["q1.1"]).logical.joins[0]
        artifact = BuildLookup(join).build(tiny_ssb)
        date = tiny_ssb.table("date")
        selected = date["d_datekey"][date["d_year"] == 1993]
        assert artifact.key_low == int(selected.min())
        assert artifact.key_high == int(selected.max())

    def test_mixed_layout_artifacts_probe_identically(self, tiny_ssb):
        """A shared build cache may hold either layout; probes must not care."""
        session_dense = Session(tiny_ssb, zones=False, cache=False)
        session_zones = Session(tiny_ssb, cache=False)
        for name in ("q2.1", "q3.2", "q4.1"):
            dense = session_dense.run(QUERIES[name])
            pruned = session_zones.run(QUERIES[name])
            assert dense.value == pruned.value
            assert dense.simulated_ms == pruned.simulated_ms


# ----------------------------------------------------------------------
# Session integration: default plane, counters, opt-out, threads
# ----------------------------------------------------------------------


class TestSessionZones:
    def test_zone_plane_is_default_and_counts(self, tiny_ssb):
        session = Session(tiny_ssb)
        session.run(QUERIES["q1.1"])
        info = session.cache_info("zones")
        assert info.misses >= 1  # fact (and dimension) statistics built
        assert info.tables >= 1

    def test_opt_out_reports_zeroes(self, tiny_ssb):
        session = Session(tiny_ssb, zones=False)
        session.run(QUERIES["q1.1"])
        info = session.cache_info("zones")
        assert info == (0, 0, 0, 0, 0, 0, 0, 0)

    def test_unknown_cache_name_still_rejected(self, tiny_ssb):
        with pytest.raises(ValueError, match="unknown cache"):
            Session(tiny_ssb).cache_info("bogus")

    def test_clear_cache_resets_zone_counters(self, tiny_ssb):
        session = Session(tiny_ssb)
        session.run(QUERIES["q1.1"])
        session.clear_cache()
        assert session.cache_info("zones") == (0, 0, 0, 0, 0, 0, 0, 0)

    def test_run_many_share_builds_with_zones(self, tiny_ssb):
        queries = [QUERIES[name] for name in ("q1.1", "q2.1", "q3.1", "q4.1")]
        plain = Session(tiny_ssb, zones=False, cache=False).run_many(queries)
        shared = Session(tiny_ssb, cache=False).run_many(queries, share_builds=True)
        for a, b in zip(plain, shared):
            assert a.value == b.value
            assert a.simulated_ms == b.simulated_ms

    def test_threaded_run_many_with_zones(self, tiny_ssb):
        queries = [QUERIES[name] for name in sorted(QUERIES)] * 2
        serial = Session(tiny_ssb, zones=False, cache=False).run_many(queries)
        threaded = Session(tiny_ssb, cache=False).run_many(
            queries, share_builds=True, workers=4, oversubscribe=True
        )
        for a, b in zip(serial, threaded):
            assert a.value == b.value
            assert a.simulated_ms == b.simulated_ms


# ----------------------------------------------------------------------
# cluster_by + appended tail: the contract in its docstring, pinned
# ----------------------------------------------------------------------


class TestClusteredAppendedTail:
    """cluster_by is a one-shot physical-design decision, not an invariant.

    Rows appended after clustering land in arrival order at the tail.  The
    ``cluster_by`` docstring promises two things about that state: answers
    stay byte-identical (the unclustered tail zones classify as *evaluate*
    rather than being mis-skipped), and the sorted prefix keeps pruning at
    full strength.  Re-clustering restores full pruning over the tail.
    """

    def grown_clustered(self):
        db = generate_ssb(scale_factor=0.01, seed=33)
        clustered = cluster_by(db, "lineorder", "lo_orderdate")
        band = (
            Q("lineorder", db=clustered)
            .filter("lo_orderdate", "lt", 19930101)
            .agg("sum", "lo_revenue")
            .build(clustered)
        )
        return clustered, band

    def test_tail_zones_evaluate_prefix_keeps_pruning(self):
        clustered, band = self.grown_clustered()
        session = Session(clustered)
        session.run(band)
        before = session.cache_info("zones")
        assert before.zones_skipped > 0  # clustering made the band prunable

        # The appended batch is in arrival order: its dates span the whole
        # domain, so its zones straddle the band predicate.
        clustered.table("lineorder").append(
            generate_lineorder_batch(clustered, 4096, seed=34)
        )
        session.run(band)
        after = session.cache_info("zones")
        delta_skipped = after.zones_skipped - before.zones_skipped
        # Prefix at full strength: of the zones skipped before, only the
        # shared partial tail zone (which now also holds appended rows and
        # so straddles the band) may degrade to evaluate.
        assert delta_skipped >= before.zones_skipped - 1
        # The unclustered tail was never mis-skipped: it was evaluated.
        assert after.zones_evaluated > before.zones_evaluated
        # And the statistics got there by extension, not a rebuild.
        assert after.extended == 1 and after.misses == before.misses

    def test_grown_table_answers_stay_identical_on_all_planes(self):
        clustered, band = self.grown_clustered()
        clustered.table("lineorder").append(
            generate_lineorder_batch(clustered, 4096, seed=34)
        )
        _assert_identical(clustered, band)
        for name in ("q1.1", "q2.1", "q3.1", "q4.1"):
            _assert_identical(clustered, QUERIES[name])

    def test_reclustering_restores_full_pruning(self):
        clustered, band = self.grown_clustered()
        session = Session(clustered)
        session.run(band)
        prefix_zones = session.cache_info("zones").zones_skipped

        clustered.table("lineorder").append(
            generate_lineorder_batch(clustered, 4096, seed=34)
        )
        recl = cluster_by(clustered, "lineorder", "lo_orderdate")
        fresh = Session(recl)
        assert fresh.run(band).value == execute_query_monolithic(recl, band)[0]
        # One more zone of data, same (or better) skip rate as before: the
        # compaction step recovers pruning strength over the whole table.
        assert fresh.cache_info("zones").zones_skipped >= prefix_zones
