"""Tests for the SSB schema, generator, and query definitions."""

import numpy as np
import pytest

from repro.ssb import QUERIES, SSBQuery, generate_ssb, ssb_table_rows
from repro.ssb.queries import QUERY_ORDER, FilterSpec
from repro.ssb.schema import (
    NATIONS,
    REGIONS,
    all_cities,
    brand_name,
    category_name,
    city_name,
    generate_date_attributes,
    mfgr_name,
)


class TestSchema:
    def test_geography_sizes(self):
        assert len(REGIONS) == 5
        assert len(NATIONS) == 25
        assert len(all_cities()) == 250
        assert len(set(all_cities())) == 250

    def test_city_name_convention(self):
        assert city_name("UNITED KINGDOM", 1) == "UNITED KI1"
        with pytest.raises(ValueError):
            city_name("FRANCE", 10)

    def test_part_hierarchy_names(self):
        assert mfgr_name(1) == "MFGR#1"
        assert category_name(1, 2) == "MFGR#12"
        assert brand_name(2, 2, 21) == "MFGR#2221"

    def test_cardinality_scaling(self):
        assert ssb_table_rows("lineorder", 1) == 6_000_000
        assert ssb_table_rows("lineorder", 20) == 120_000_000
        assert ssb_table_rows("supplier", 20) == 40_000
        assert ssb_table_rows("customer", 20) == 600_000
        assert ssb_table_rows("part", 20) == 1_000_000
        assert ssb_table_rows("date", 20) == 2_556
        with pytest.raises(KeyError):
            ssb_table_rows("orders", 1)
        with pytest.raises(ValueError):
            ssb_table_rows("lineorder", 0)

    def test_date_attributes(self):
        rows = generate_date_attributes()
        years = {r["d_year"] for r in rows}
        assert years == set(range(1992, 1999))
        first = rows[0]
        assert first["d_datekey"] == 19920101
        assert first["d_yearmonth"] == "Jan1992"
        assert 1 <= max(r["d_weeknuminyear"] for r in rows) <= 53


class TestGenerator:
    def test_table_cardinalities(self, tiny_ssb):
        assert tiny_ssb["lineorder"].num_rows == 60_000
        assert tiny_ssb["date"].num_rows >= 2_555
        assert set(tiny_ssb.tables) == {"lineorder", "date", "supplier", "customer", "part"}

    def test_determinism(self):
        a = generate_ssb(scale_factor=0.01, seed=3)
        b = generate_ssb(scale_factor=0.01, seed=3)
        assert np.array_equal(a["lineorder"]["lo_revenue"], b["lineorder"]["lo_revenue"])

    def test_different_seeds_differ(self):
        a = generate_ssb(scale_factor=0.01, seed=3)
        b = generate_ssb(scale_factor=0.01, seed=4)
        assert not np.array_equal(a["lineorder"]["lo_revenue"], b["lineorder"]["lo_revenue"])

    def test_foreign_keys_are_dense_and_valid(self, tiny_ssb):
        lineorder = tiny_ssb["lineorder"]
        assert lineorder["lo_custkey"].max() < tiny_ssb["customer"].num_rows
        assert lineorder["lo_suppkey"].max() < tiny_ssb["supplier"].num_rows
        assert lineorder["lo_partkey"].max() < tiny_ssb["part"].num_rows
        assert np.isin(lineorder["lo_orderdate"], tiny_ssb["date"]["d_datekey"]).all()

    def test_measure_domains(self, tiny_ssb):
        lineorder = tiny_ssb["lineorder"]
        assert lineorder["lo_quantity"].min() >= 1
        assert lineorder["lo_quantity"].max() <= 50
        assert lineorder["lo_discount"].min() >= 0
        assert lineorder["lo_discount"].max() <= 10

    def test_all_columns_are_four_bytes(self, tiny_ssb):
        """Section 5.2: every stored column is a 4-byte value."""
        for table in tiny_ssb.tables.values():
            for column in table.columns.values():
                assert column.itemsize == 4, f"{table.name}.{column.name}"

    def test_region_predicate_selectivity(self, small_ssb):
        """s_region = 'AMERICA' selects ~1/5 of suppliers (uniform regions)."""
        supplier = small_ssb["supplier"]
        code = supplier.encode_predicate_value("s_region", "AMERICA")
        selectivity = float(np.mean(supplier["s_region"] == code))
        assert selectivity == pytest.approx(0.2, abs=0.08)

    def test_category_predicate_selectivity(self, small_ssb):
        """p_category = 'MFGR#12' selects ~1/25 of parts."""
        part = small_ssb["part"]
        code = part.encode_predicate_value("p_category", "MFGR#12")
        selectivity = float(np.mean(part["p_category"] == code))
        assert selectivity == pytest.approx(1 / 25, abs=0.02)


class TestQueryDefinitions:
    def test_thirteen_queries_in_four_flights(self):
        assert len(QUERIES) == 13
        assert QUERY_ORDER == list(QUERIES)
        flights = {}
        for query in QUERIES.values():
            flights.setdefault(query.flight, []).append(query.name)
        assert {k: len(v) for k, v in flights.items()} == {1: 3, 2: 3, 3: 4, 4: 3}

    def test_flight1_is_scalar_aggregate(self):
        for name in ("q1.1", "q1.2", "q1.3"):
            assert not QUERIES[name].has_group_by
            assert QUERIES[name].aggregate.combine == "mul"

    def test_flight4_computes_profit(self):
        for name in ("q4.1", "q4.2", "q4.3"):
            assert QUERIES[name].aggregate.combine == "sub"
            assert QUERIES[name].aggregate.columns == ("lo_revenue", "lo_supplycost")

    def test_q21_structure_matches_paper(self):
        query = QUERIES["q2.1"]
        assert [j.dimension for j in query.joins] == ["supplier", "part", "date"]
        assert query.group_by == ("d_year", "p_brand1")
        supplier_filter = query.joins[0].filters[0]
        assert supplier_filter == FilterSpec("s_region", "eq", "AMERICA", encoded=True)

    def test_fact_columns_accessed_are_unique_and_known(self, tiny_ssb):
        fact = tiny_ssb["lineorder"]
        for query in QUERIES.values():
            columns = query.fact_columns_accessed()
            assert len(columns) == len(set(columns))
            for column in columns:
                assert column in fact

    def test_every_group_by_column_has_a_payload_join(self):
        for query in QUERIES.values():
            payloads = {j.payload for j in query.joins if j.payload}
            for group_column in query.group_by:
                assert group_column in payloads
