"""Shared fixtures for the test suite."""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.sim.cpu import CPUSimulator
from repro.sim.gpu import GPUSimulator
from repro.ssb.generator import generate_ssb

#: Where POSIX shared memory lives; prefixes that can only be ours.
SHM_DIR = "/dev/shm"
SHM_LEAK_PREFIXES = ("psm_", "repro")


def shm_segment_names() -> set:
    """The current ``/dev/shm`` entries that look like ours."""
    try:
        names = os.listdir(SHM_DIR)
    except OSError:  # platform without /dev/shm: nothing to guard
        return set()
    return {name for name in names if name.startswith(SHM_LEAK_PREFIXES)}


@pytest.fixture(scope="session", autouse=True)
def shm_leak_guard():
    """Fail the run if any test leaked a shared-memory segment.

    One snapshot of ``/dev/shm`` brackets the whole session -- including
    the chaos suite, which kills workers and unlinks segments mid-query --
    so every test gets leak coverage without per-test baseline loops.
    Segments that predate the run (another process, a crashed earlier run
    the janitor has not seen yet) are excluded from blame.
    """
    before = shm_segment_names()
    yield
    gc.collect()  # drop any lingering SharedMemory handles before looking
    leaked = shm_segment_names() - before
    assert not leaked, f"tests leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="session")
def cpu_sim() -> CPUSimulator:
    """A CPU simulator configured with the paper's Intel i7-6900."""
    return CPUSimulator()


@pytest.fixture(scope="session")
def gpu_sim() -> GPUSimulator:
    """A GPU simulator configured with the paper's Nvidia V100."""
    return GPUSimulator()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic random generator shared across tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_ssb():
    """A small SSB database (SF 0.01) reused by engine and query tests."""
    return generate_ssb(scale_factor=0.01, seed=7)


@pytest.fixture(scope="session")
def small_ssb():
    """A slightly larger SSB database (SF 0.05) for selectivity checks."""
    return generate_ssb(scale_factor=0.05, seed=11)
