"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.cpu import CPUSimulator
from repro.sim.gpu import GPUSimulator
from repro.ssb.generator import generate_ssb


@pytest.fixture(scope="session")
def cpu_sim() -> CPUSimulator:
    """A CPU simulator configured with the paper's Intel i7-6900."""
    return CPUSimulator()


@pytest.fixture(scope="session")
def gpu_sim() -> GPUSimulator:
    """A GPU simulator configured with the paper's Nvidia V100."""
    return GPUSimulator()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic random generator shared across tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_ssb():
    """A small SSB database (SF 0.01) reused by engine and query tests."""
    return generate_ssb(scale_factor=0.01, seed=7)


@pytest.fixture(scope="session")
def small_ssb():
    """A slightly larger SSB database (SF 0.05) for selectivity checks."""
    return generate_ssb(scale_factor=0.05, seed=11)
