"""Shared fixtures for the test suite."""

from __future__ import annotations

import gc
import os

import numpy as np
import pytest

from repro.sim.cpu import CPUSimulator
from repro.sim.gpu import GPUSimulator
from repro.ssb.generator import generate_ssb

#: Where POSIX shared memory lives; prefixes that can only be ours.
SHM_DIR = "/dev/shm"
SHM_LEAK_PREFIXES = ("psm_", "repro")


def shm_segment_names() -> set:
    """The current ``/dev/shm`` entries that look like ours."""
    try:
        names = os.listdir(SHM_DIR)
    except OSError:  # platform without /dev/shm: nothing to guard
        return set()
    return {name for name in names if name.startswith(SHM_LEAK_PREFIXES)}


def orphaned_durability_tmp() -> set:
    """``*.tmp`` files left in any durability directory this process used.

    A ``.tmp`` file is only ever a checkpoint (or WAL rewrite) mid-write;
    after a test finishes, one still on disk means a writer died and
    nothing swept it -- recovery's job, so a leftover is a recovery bug,
    not housekeeping noise.  Directories deleted wholesale by their test
    (tmp_path teardown) simply stop existing and drop out of the sweep.
    """
    from repro.storage.wal import known_durability_dirs

    orphans = set()
    for directory in known_durability_dirs():
        try:
            names = os.listdir(directory)
        except OSError:  # the test deleted its tmp dir: nothing leaked
            continue
        orphans.update(
            os.path.join(directory, name) for name in names if name.endswith(".tmp")
        )
    return orphans


@pytest.fixture(scope="session", autouse=True)
def artifact_leak_guard():
    """Fail the run if any test leaked a process-external artifact.

    Two sweeps bracket the whole session.  Shared memory: one snapshot of
    ``/dev/shm`` -- including the chaos suite, which kills workers and
    unlinks segments mid-query -- so every test gets leak coverage without
    per-test baseline loops; segments that predate the run (another
    process, a crashed earlier run the janitor has not seen yet) are
    excluded from blame.  Durability directories: every directory a
    :class:`~repro.storage.DurabilityManager` opened during the run must
    end with no orphaned ``.tmp`` checkpoint files -- crash tests *create*
    orphans on purpose, so this asserts their recovery half really swept.
    """
    before = shm_segment_names()
    yield
    gc.collect()  # drop any lingering SharedMemory handles before looking
    leaked = shm_segment_names() - before
    assert not leaked, f"tests leaked shared-memory segments: {sorted(leaked)}"
    orphans = orphaned_durability_tmp()
    assert not orphans, f"tests leaked orphaned durability temp files: {sorted(orphans)}"


@pytest.fixture(scope="session")
def cpu_sim() -> CPUSimulator:
    """A CPU simulator configured with the paper's Intel i7-6900."""
    return CPUSimulator()


@pytest.fixture(scope="session")
def gpu_sim() -> GPUSimulator:
    """A GPU simulator configured with the paper's Nvidia V100."""
    return GPUSimulator()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic random generator shared across tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_ssb():
    """A small SSB database (SF 0.01) reused by engine and query tests."""
    return generate_ssb(scale_factor=0.01, seed=7)


@pytest.fixture(scope="session")
def small_ssb():
    """A slightly larger SSB database (SF 0.05) for selectivity checks."""
    return generate_ssb(scale_factor=0.05, seed=11)
