"""Tests for the Crystal block-wide functions and fused kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.crystal import (
    BlockContext,
    CrystalKernel,
    Tile,
    block_aggregate,
    block_load,
    block_load_sel,
    block_lookup,
    block_pred,
    block_pred_and,
    block_scan,
    block_shuffle,
    block_store,
)
from repro.ops.hash_table import LinearProbingHashTable


class TestTile:
    def test_defaults(self):
        tile = Tile(values=np.arange(8, dtype=np.int32))
        assert tile.size == 8
        assert tile.itemsize == 4
        assert tile.num_matched() == 8

    def test_partial_tile(self):
        tile = Tile(values=np.arange(8), size=5)
        assert list(tile.valid_values()) == [0, 1, 2, 3, 4]

    def test_bitmap_matching(self):
        tile = Tile(values=np.arange(8), bitmap=np.arange(8) % 2 == 0)
        assert list(tile.matched_values()) == [0, 2, 4, 6]
        assert tile.num_matched() == 4

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Tile(values=np.arange(4), size=10)

    def test_mismatched_bitmap_rejected(self):
        with pytest.raises(ValueError):
            Tile(values=np.arange(4), bitmap=np.ones(3, dtype=bool))

    def test_empty(self):
        assert Tile.empty().size == 0


class TestLoadPredScan:
    def test_block_load_charges_read_traffic(self):
        ctx = BlockContext()
        column = np.arange(1024, dtype=np.int32)
        tile = block_load(ctx, column)
        assert np.array_equal(tile.values, column)
        assert ctx.traffic.sequential_read_bytes == column.nbytes
        assert ctx.items_processed == 1024

    def test_block_load_copies(self):
        ctx = BlockContext()
        column = np.arange(16, dtype=np.int32)
        tile = block_load(ctx, column)
        tile.values[0] = 99
        assert column[0] == 0

    def test_block_load_sel_reads_less_when_selective(self):
        column = np.arange(4096, dtype=np.int32)
        sparse_ctx, dense_ctx = BlockContext(), BlockContext()
        sparse_bitmap = np.zeros(4096, dtype=bool)
        sparse_bitmap[:10] = True
        block_load_sel(sparse_ctx, column, sparse_bitmap)
        block_load_sel(dense_ctx, column, np.ones(4096, dtype=bool))
        assert sparse_ctx.traffic.sequential_read_bytes < dense_ctx.traffic.sequential_read_bytes
        assert dense_ctx.traffic.sequential_read_bytes <= column.nbytes

    def test_block_load_sel_zeroes_unselected(self):
        ctx = BlockContext()
        column = np.arange(1, 9, dtype=np.int32)
        bitmap = np.array([True, False] * 4)
        tile = block_load_sel(ctx, column, bitmap)
        assert list(tile.values[~bitmap]) == [0, 0, 0, 0]
        assert list(tile.matched_values()) == [1, 3, 5, 7]

    def test_block_pred(self):
        ctx = BlockContext()
        tile = Tile(values=np.arange(10, dtype=np.int32))
        tile = block_pred(ctx, tile, lambda v: v >= 5)
        assert tile.num_matched() == 5

    def test_block_pred_partial_tile_excludes_tail(self):
        ctx = BlockContext()
        tile = Tile(values=np.arange(10, dtype=np.int32), size=4)
        tile = block_pred(ctx, tile, lambda v: v >= 0)
        assert tile.num_matched() == 4

    def test_block_pred_and(self):
        ctx = BlockContext()
        tile = Tile(values=np.arange(10, dtype=np.int32))
        tile = block_pred(ctx, tile, lambda v: v >= 2)
        tile = block_pred_and(ctx, tile, lambda v: v < 7)
        assert list(tile.matched_values()) == [2, 3, 4, 5, 6]

    def test_block_pred_rejects_bad_shape(self):
        ctx = BlockContext()
        tile = Tile(values=np.arange(4))
        with pytest.raises(ValueError):
            block_pred(ctx, tile, lambda v: np.array([True]))

    def test_block_scan_offsets_and_total(self):
        ctx = BlockContext()  # default tile size 512
        values = np.arange(8, dtype=np.int32)
        tile = Tile(values=values, bitmap=values % 2 == 0)
        offsets, tile_totals, total = block_scan(ctx, tile)
        assert total == 4
        assert list(offsets) == [0, 1, 1, 2, 2, 3, 3, 4]
        assert list(tile_totals) == [4]
        assert ctx.barriers_per_tile >= 2

    def test_block_scan_per_tile(self):
        from repro.sim.gpu import KernelLaunch
        ctx = BlockContext(launch=KernelLaunch(threads_per_block=2, items_per_thread=2))
        values = np.arange(8, dtype=np.int32)
        tile = Tile(values=values, bitmap=np.ones(8, dtype=bool))
        offsets, tile_totals, total = block_scan(ctx, tile)
        assert total == 8
        assert list(tile_totals) == [4, 4]
        # Offsets restart at each logical tile of 4 items.
        assert list(offsets) == [0, 1, 2, 3, 0, 1, 2, 3]


class TestShuffleStoreAggregate:
    def test_block_shuffle_compacts(self):
        ctx = BlockContext()
        values = np.array([5, 1, 7, 3], dtype=np.int32)
        tile = Tile(values=values, bitmap=np.array([True, False, True, False]))
        shuffled = block_shuffle(ctx, tile)
        assert shuffled.size == 2
        assert list(shuffled.valid_values()) == [5, 7]

    def test_block_store_writes_at_offset(self):
        ctx = BlockContext()
        out = np.zeros(10, dtype=np.int32)
        tile = Tile(values=np.array([4, 5, 6], dtype=np.int32))
        written = block_store(ctx, tile, out, offset=2)
        assert written == 3
        assert list(out[2:5]) == [4, 5, 6]
        assert ctx.traffic.sequential_write_bytes == 12

    def test_block_store_rejects_overflow(self):
        ctx = BlockContext()
        out = np.zeros(2, dtype=np.int32)
        with pytest.raises(ValueError):
            block_store(ctx, Tile(values=np.arange(4, dtype=np.int32)), out, 0)

    def test_block_aggregate_sum_and_counter(self):
        ctx = BlockContext()
        tile = Tile(values=np.arange(10, dtype=np.int64))
        total = block_aggregate(ctx, tile, op="sum")
        assert total == 45.0
        assert ctx.counters["aggregate"] == 45.0
        assert ctx.traffic.atomic_updates >= 1

    def test_block_aggregate_min_max_count(self):
        ctx = BlockContext()
        tile = Tile(values=np.array([3, 9, 1], dtype=np.int64))
        assert block_aggregate(ctx, tile, op="min", update_global=False) == 1.0
        assert block_aggregate(ctx, tile, op="max", update_global=False) == 9.0
        assert block_aggregate(ctx, tile, op="count", update_global=False) == 3.0

    def test_block_aggregate_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            block_aggregate(BlockContext(), Tile(values=np.arange(3)), op="median")

    def test_block_aggregate_respects_bitmap(self):
        ctx = BlockContext()
        tile = Tile(values=np.arange(10, dtype=np.int64), bitmap=np.arange(10) < 3)
        assert block_aggregate(ctx, tile, op="sum", update_global=False) == 3.0


class TestBlockLookup:
    def test_lookup_finds_matches(self):
        table = LinearProbingHashTable.build(np.arange(100), np.arange(100) * 10)
        ctx = BlockContext()
        keys = Tile(values=np.array([5, 200, 42], dtype=np.int64))
        found, values = block_lookup(ctx, keys, table)
        assert list(found) == [True, False, True]
        assert values[0] == 50 and values[2] == 420
        assert ctx.traffic.random_accesses == 3
        assert ctx.traffic.random_working_set_bytes == table.size_bytes

    def test_lookup_respects_bitmap(self):
        table = LinearProbingHashTable.build(np.arange(100), np.arange(100))
        ctx = BlockContext()
        keys = Tile(values=np.array([1, 2, 3], dtype=np.int64),
                    bitmap=np.array([True, False, True]))
        found, _ = block_lookup(ctx, keys, table)
        assert list(found) == [True, False, True]
        assert ctx.traffic.random_accesses == 2


class TestCrystalKernel:
    def _selection_kernel(self, column, threshold, **kwargs):
        def body(ctx):
            out = np.zeros_like(column)
            tile = block_load(ctx, column)
            tile = block_pred(ctx, tile, lambda v: v > threshold)
            offsets, _, total = block_scan(ctx, tile)
            cursor = ctx.atomic_add("out", total)
            shuffled = block_shuffle(ctx, tile, offsets)
            block_store(ctx, shuffled, out, cursor, total)
            return out[:total]

        return CrystalKernel(body, **kwargs).run()

    def test_docstring_example(self):
        column = np.arange(16, dtype=np.int32)
        result = self._selection_kernel(column, 7)
        assert list(result.value) == list(range(8, 16))
        assert result.milliseconds > 0
        assert result.traffic.sequential_read_bytes == column.nbytes

    def test_fused_kernel_reads_input_once(self):
        column = np.arange(4096, dtype=np.int32)
        result = self._selection_kernel(column, 0)
        assert result.traffic.sequential_read_bytes == pytest.approx(column.nbytes)

    @settings(max_examples=25, deadline=None)
    @given(
        values=hnp.arrays(np.int32, st.integers(min_value=1, max_value=2000),
                          elements=st.integers(min_value=-1000, max_value=1000)),
        threshold=st.integers(min_value=-1000, max_value=1000),
    )
    def test_selection_matches_numpy_for_any_input(self, values, threshold):
        result = self._selection_kernel(values, threshold)
        expected = values[values > threshold]
        assert np.array_equal(np.sort(result.value), np.sort(expected))

    def test_larger_tiles_issue_fewer_atomics(self):
        column = np.arange(1 << 16, dtype=np.int32)
        small = self._selection_kernel(column, 100, threads_per_block=32, items_per_thread=1)
        large = self._selection_kernel(column, 100, threads_per_block=256, items_per_thread=4)
        assert small.traffic.atomic_updates > large.traffic.atomic_updates
