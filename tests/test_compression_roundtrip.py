"""Property-style round-trip tests for bit-packed columns.

The compressed scan path stands on one invariant: packing is lossless for
any non-negative integer column at any bit width.  These tests hammer that
across random domains, the word-boundary widths (31/32/33 bits, where
values straddle 64-bit words in every alignment), the degenerate widths
(1-bit flags, single-value columns), and the selective decode
(:meth:`~repro.storage.compression.BitPackedColumn.unpack_at`) that the
executor's packed gathers rely on.
"""

import numpy as np
import pytest

from repro.storage.compression import BitPackedColumn, bits_needed, pack_table_columns


class TestBitsNeeded:
    def test_boundaries(self):
        assert bits_needed(0) == 1
        assert bits_needed(1) == 1
        assert bits_needed(2) == 2
        assert bits_needed((1 << 31) - 1) == 31
        assert bits_needed(1 << 31) == 32
        assert bits_needed((1 << 32) - 1) == 32
        assert bits_needed(1 << 32) == 33

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            bits_needed(-1)


class TestRoundTrip:
    @pytest.mark.parametrize("high", [2, 11, 51, 255, 256, 65_535, 65_536, 10**6])
    def test_random_domains(self, rng, high):
        values = rng.integers(0, high, size=4_097)
        packed = BitPackedColumn.pack(values)
        assert packed.bit_width == bits_needed(int(values.max()))
        np.testing.assert_array_equal(packed.unpack(), values)

    @pytest.mark.parametrize("width", [1, 31, 32, 33])
    def test_word_boundary_widths(self, rng, width):
        """Widths around 32 straddle 64-bit words in every alignment."""
        high = 1 << width  # forces exactly `width` bits
        values = rng.integers(0, high, size=1_001)
        values[0] = high - 1  # pin the width even if the draw missed the top
        packed = BitPackedColumn.pack(values)
        assert packed.bit_width == width
        np.testing.assert_array_equal(packed.unpack(), values)

    def test_single_value_column(self):
        values = np.full(777, 13, dtype=np.int64)
        packed = BitPackedColumn.pack(values)
        assert packed.bit_width == 4
        np.testing.assert_array_equal(packed.unpack(), values)

    def test_all_zeros_still_one_bit(self):
        values = np.zeros(100, dtype=np.int64)
        packed = BitPackedColumn.pack(values)
        assert packed.bit_width == 1
        np.testing.assert_array_equal(packed.unpack(), values)

    def test_empty_column(self):
        packed = BitPackedColumn.pack(np.array([], dtype=np.int64))
        assert packed.num_values == 0
        assert packed.unpack().shape == (0,)

    def test_single_element(self):
        packed = BitPackedColumn.pack(np.array([2**40]))
        assert packed.bit_width == 41
        np.testing.assert_array_equal(packed.unpack(), [2**40])

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BitPackedColumn.pack(np.array([3, -1, 5]))

    def test_odd_sizes_and_alignments(self, rng):
        """Value counts around word-capacity multiples (ragged final word)."""
        for width_source, n in [(7, 63), (7, 64), (7, 65), (127, 9), (1023, 13)]:
            values = rng.integers(0, width_source + 1, size=n)
            values[-1] = width_source
            packed = BitPackedColumn.pack(values)
            np.testing.assert_array_equal(packed.unpack(), values)


class TestUnpackAt:
    @pytest.mark.parametrize("width", [1, 4, 13, 31, 32, 33])
    def test_matches_full_unpack(self, rng, width):
        values = rng.integers(0, 1 << width, size=10_000)
        values[0] = (1 << width) - 1
        packed = BitPackedColumn.pack(values)
        indices = np.flatnonzero(rng.random(10_000) < 0.1)
        np.testing.assert_array_equal(packed.unpack_at(indices), values[indices])

    def test_empty_indices(self, rng):
        packed = BitPackedColumn.pack(rng.integers(0, 100, size=50))
        assert packed.unpack_at(np.array([], dtype=np.int64)).shape == (0,)

    def test_unsorted_and_repeated_indices(self, rng):
        values = rng.integers(0, 1000, size=500)
        packed = BitPackedColumn.pack(values)
        indices = np.array([499, 0, 7, 7, 250, 1, 499])
        np.testing.assert_array_equal(packed.unpack_at(indices), values[indices])

    def test_last_index_uses_guard_word(self, rng):
        """The final value may spill into the guard word pack() reserves."""
        for width in (31, 33, 63):
            values = rng.integers(0, 1 << width, size=97)
            values[-1] = (1 << width) - 1
            packed = BitPackedColumn.pack(values)
            assert packed.unpack_at(np.array([96]))[0] == values[-1]


class TestSizeAccounting:
    def test_packed_bytes_formula(self, rng):
        values = rng.integers(0, 51, size=12_345)  # 6 bits
        packed = BitPackedColumn.pack(values)
        assert packed.packed_bytes == int(np.ceil(12_345 * 6 / 8))
        assert packed.uncompressed_bytes == 12_345 * 4
        assert packed.compression_ratio == pytest.approx(4 * 8 / 6, rel=0.01)

    def test_pack_table_columns_convenience(self, rng):
        columns = {
            "a": rng.integers(0, 10, size=100),
            "b": rng.integers(0, 1000, size=100),
        }
        packed = pack_table_columns(columns)
        assert set(packed) == {"a", "b"}
        for name, twin in packed.items():
            np.testing.assert_array_equal(twin.unpack(), columns[name])
