"""Tests for the projection and selection operators (Sections 4.1 and 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.project import gpu_project_model
from repro.models.select import gpu_select_model
from repro.ops.cpu import cpu_project, cpu_select
from repro.ops.cpu.project import sigmoid
from repro.ops.gpu import gpu_project, gpu_select, gpu_select_independent_threads


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(5)
    n = 1 << 16
    return rng.random(n).astype(np.float32), rng.random(n).astype(np.float32)


class TestProjectCorrectness:
    def test_cpu_linear_combination(self, columns):
        x1, x2 = columns
        result = cpu_project(x1, x2, a=2.0, b=3.0, variant="naive")
        assert np.allclose(result.value, 2 * x1 + 3 * x2, rtol=1e-5)

    def test_cpu_udf(self, columns):
        x1, x2 = columns
        result = cpu_project(x1, x2, udf=sigmoid, variant="opt")
        assert np.allclose(result.value, sigmoid(2 * x1 + 3 * x2), rtol=1e-5)

    def test_gpu_matches_cpu(self, columns):
        x1, x2 = columns
        cpu = cpu_project(x1, x2, variant="opt")
        gpu = gpu_project(x1, x2)
        assert np.allclose(cpu.value, gpu.value, rtol=1e-5)

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ValueError):
            cpu_project(np.zeros(4, dtype=np.float32), np.zeros(5, dtype=np.float32))
        with pytest.raises(ValueError):
            gpu_project(np.zeros(4, dtype=np.float32), np.zeros(5, dtype=np.float32))

    def test_unknown_variant(self, columns):
        x1, x2 = columns
        with pytest.raises(ValueError):
            cpu_project(x1, x2, variant="bogus")


class TestProjectPerformanceShape:
    def test_optimized_cpu_not_slower(self, columns):
        x1, x2 = columns
        naive = cpu_project(x1, x2, udf=sigmoid, variant="naive")
        opt = cpu_project(x1, x2, udf=sigmoid, variant="opt")
        assert opt.seconds <= naive.seconds

    def test_gpu_faster_than_cpu(self, columns):
        x1, x2 = columns
        cpu = cpu_project(x1, x2, variant="opt")
        gpu = gpu_project(x1, x2)
        assert gpu.seconds < cpu.seconds

    def test_gpu_close_to_bandwidth_model(self, columns):
        x1, x2 = columns
        gpu = gpu_project(x1, x2)
        model = gpu_project_model(len(x1))
        # Within 2x of the bandwidth-saturated bound (launch overhead dominates
        # at this small execution size).
        assert gpu.seconds <= model.seconds * 3 + 1e-4

    def test_traffic_matches_footprint(self, columns):
        x1, x2 = columns
        result = gpu_project(x1, x2)
        assert result.traffic.sequential_read_bytes == pytest.approx(x1.nbytes * 2)
        assert result.traffic.sequential_write_bytes == pytest.approx(x1.nbytes)


class TestSelectCorrectness:
    @pytest.mark.parametrize("variant", ["if", "pred", "simd_pred"])
    def test_cpu_variants_match_numpy(self, columns, variant):
        y, _ = columns
        result = cpu_select(y, 0.3, variant)
        assert np.array_equal(result.value, y[y < 0.3])

    @pytest.mark.parametrize("variant", ["if", "pred"])
    def test_gpu_variants_match_numpy(self, columns, variant):
        y, _ = columns
        result = gpu_select(y, 0.3, variant)
        assert np.array_equal(np.sort(result.value), np.sort(y[y < 0.3]))

    def test_independent_threads_matches(self, columns):
        y, _ = columns
        result = gpu_select_independent_threads(y, 0.7)
        assert np.array_equal(np.sort(result.value), np.sort(y[y < 0.7]))

    def test_unknown_variants(self, columns):
        y, _ = columns
        with pytest.raises(ValueError):
            cpu_select(y, 0.5, "vectorized")
        with pytest.raises(ValueError):
            gpu_select(y, 0.5, "simd")

    def test_selectivity_stat(self, columns):
        y, _ = columns
        result = cpu_select(y, 0.5, "pred")
        assert result.stat("selectivity") == pytest.approx(0.5, abs=0.02)

    @settings(max_examples=20, deadline=None)
    @given(threshold=st.floats(min_value=0.0, max_value=1.0))
    def test_all_variants_agree(self, columns, threshold):
        y, _ = columns
        reference = y[y < threshold]
        for variant in ("if", "pred", "simd_pred"):
            assert np.array_equal(cpu_select(y, threshold, variant).value, reference)
        assert np.array_equal(np.sort(gpu_select(y, threshold).value), np.sort(reference))


class TestSelectPerformanceShape:
    def test_branching_pays_at_half_selectivity(self, columns):
        y, _ = columns
        branching = cpu_select(y, 0.5, "if")
        predicated = cpu_select(y, 0.5, "pred")
        assert branching.seconds > predicated.seconds

    def test_simd_is_fastest_cpu_variant(self, columns):
        y, _ = columns
        simd = cpu_select(y, 0.5, "simd_pred")
        assert simd.seconds <= cpu_select(y, 0.5, "pred").seconds
        assert simd.seconds <= cpu_select(y, 0.5, "if").seconds

    def test_gpu_branching_does_not_matter(self, columns):
        """Paper: GPU If and GPU Pred perform identically (no branch predictor)."""
        y, _ = columns
        branching = gpu_select(y, 0.5, "if")
        predicated = gpu_select(y, 0.5, "pred")
        assert branching.seconds == pytest.approx(predicated.seconds, rel=0.01)

    def test_crystal_beats_independent_threads(self, columns):
        y, _ = columns
        crystal = gpu_select(y, 0.5)
        independent = gpu_select_independent_threads(y, 0.5)
        assert crystal.seconds < independent.seconds

    def test_runtime_grows_with_selectivity(self, columns):
        y, _ = columns
        low = cpu_select(y, 0.1, "simd_pred")
        high = cpu_select(y, 0.9, "simd_pred")
        assert high.seconds > low.seconds

    def test_gpu_tracks_model(self, columns):
        y, _ = columns
        result = gpu_select(y, 0.5)
        model = gpu_select_model(len(y), 0.5)
        assert result.seconds <= model.seconds * 3 + 1e-4
