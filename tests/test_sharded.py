"""Process-parallel sharded execution (the escape-the-GIL plane).

The sharded plane's contract is the same one every prior plane pinned:
splitting a query across worker processes may change *how* the work runs,
never *what* it computes.  The differential suites here hold ``shards=N``
byte-identical -- answers **and** profiles -- to the monolithic executor on
all 13 canonical queries plus OR-tree extras, at multiple shard counts,
under both the ``fork`` and ``spawn`` start methods.

Beyond the differential guarantee:

* property-style merge tests drive all five aggregate ops through
  adversarial shard splits (empty shards, single-row shards, groups that
  appear in only one shard) without paying for a process pool;
* leak-safety tests create and destroy sharded sessions in a loop and
  assert every segment is released at close time (end-of-run ``/dev/shm``
  hygiene is the session-scoped ``shm_leak_guard`` fixture's job);
* cache-keying tests pin the regression that ``shards=1`` and the
  morsel-threaded path share execution-cache entries while ``shards=N``
  keys separately (its pool dispatch is real work the memo must not elide
  into the single-process entry's accounting).
"""

import asyncio
import glob

import pytest

from repro.api import Q, Session, col
from repro.engine.cache import activate_zones
from repro.engine.plan import (
    execute_query_monolithic,
    fold_shard_profiles,
    merge_partial_aggregates,
)
from repro.engine.shard import ShardExecutor, partial_for_range, shard_ranges
from repro.ssb.queries import QUERIES

START_METHODS = ("fork", "spawn")


def _shm_segments() -> list:
    return glob.glob("/dev/shm/repro-shm*")


# ----------------------------------------------------------------------
# Shard planner: zone-aligned range splits
# ----------------------------------------------------------------------


class TestShardRanges:
    @pytest.mark.parametrize(
        "num_rows,shards,zone_size",
        [
            (0, 1, 8), (0, 4, 8), (1, 1, 8), (1, 4, 8), (7, 2, 8), (8, 2, 8),
            (9, 2, 8), (64, 3, 8), (65, 3, 8), (1000, 7, 16), (1000, 1, 4096),
            (100_000, 5, 4096), (3, 10, 1),
        ],
    )
    def test_partitions_exactly(self, num_rows, shards, zone_size):
        ranges = shard_ranges(num_rows, shards, zone_size)
        assert len(ranges) == shards
        cursor = 0
        for start, stop in ranges:
            assert start == cursor  # contiguous, disjoint, ordered
            assert stop >= start
            cursor = stop
        assert cursor == num_rows  # covers [0, num_rows) exactly

    @pytest.mark.parametrize("num_rows,shards,zone_size", [(100, 3, 8), (1000, 7, 16)])
    def test_boundaries_zone_aligned(self, num_rows, shards, zone_size):
        for start, stop in shard_ranges(num_rows, shards, zone_size):
            assert start % zone_size == 0
            assert stop % zone_size == 0 or stop == num_rows

    def test_more_shards_than_zones_gives_empty_ranges(self):
        ranges = shard_ranges(10, 8, zone_size=8)  # 2 zones, 8 shards
        assert sum(1 for start, stop in ranges if stop > start) == 2
        assert sum(1 for start, stop in ranges if stop == start) == 6
        assert ranges[-1][1] == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_ranges(10, 0)
        with pytest.raises(ValueError):
            shard_ranges(10, 2, zone_size=0)


# ----------------------------------------------------------------------
# Merge properties: all five ops across adversarial splits (in-process)
# ----------------------------------------------------------------------

AGG_OPS = ("sum", "count", "min", "max", "avg")

#: Boundary lists, resolved against the fact row count at test time; each
#: one stresses a different adversarial shape.
def _adversarial_splits(n):
    return [
        [0, n],                                  # single shard == monolithic
        [0, 0, n],                               # leading empty shard
        [0, n, n],                               # trailing empty shard
        [0, 1, n],                               # single-row shard
        [0, 1, 2, 3, n],                         # several single-row shards
        [0, n // 3, n // 3, 2 * n // 3, n],      # empty middle shard
        [0, n // 2, n],                          # plain halves
    ]


def _query_for(op, db, grouped):
    builder = (
        Q("lineorder")
        .where(col("lo_discount").between(1, 3))
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
    )
    # ``count`` counts surviving rows, so it takes no measure column.
    builder = builder.agg(op) if op == "count" else builder.agg(op, "lo_revenue")
    if grouped:
        builder = builder.group_by("d_year")
    return builder.build(db)


class TestPartialMerge:
    @pytest.mark.parametrize("grouped", [False, True], ids=["scalar", "grouped"])
    @pytest.mark.parametrize("op", AGG_OPS)
    def test_all_ops_all_splits(self, tiny_ssb, op, grouped):
        query = _query_for(op, tiny_ssb, grouped)
        expected_value, expected_profile = execute_query_monolithic(tiny_ssb, query)
        n = tiny_ssb.table("lineorder").num_rows
        for bounds in _adversarial_splits(n):
            parts = [
                partial_for_range(tiny_ssb, query, start, stop)
                for start, stop in zip(bounds, bounds[1:])
            ]
            value = merge_partial_aggregates([partial for partial, _ in parts])
            assert value == expected_value, f"op={op} bounds={bounds}"
            profile = fold_shard_profiles([profile for _, profile in parts], value)
            assert profile == expected_profile, f"op={op} bounds={bounds}"

    @pytest.mark.parametrize("op", AGG_OPS)
    def test_groups_present_in_only_one_shard(self, tiny_ssb, op):
        """Split on a group boundary so each group lives in exactly one shard.

        ``d_year`` correlates with ``lo_orderdate``, so sorting the split
        point by rows guarantees some groups are single-shard; merging must
        reproduce them bit-for-bit (no identity-element pollution from the
        shards that never saw the group).
        """
        query = _query_for(op, tiny_ssb, grouped=True)
        expected, _ = execute_query_monolithic(tiny_ssb, query)
        n = tiny_ssb.table("lineorder").num_rows
        for split in (1, n // 7, n // 2, n - 1):
            parts = [
                partial_for_range(tiny_ssb, query, start, stop)
                for start, stop in ((0, split), (split, n))
            ]
            merged = merge_partial_aggregates([partial for partial, _ in parts])
            assert merged == expected

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_partial_aggregates([])
        with pytest.raises(ValueError):
            fold_shard_profiles([], None)


# ----------------------------------------------------------------------
# Pooled differential: real worker processes, fork and spawn
# ----------------------------------------------------------------------

OR_TREE_QUERIES = [
    lambda db: (
        Q("lineorder")
        .where(col("lo_discount").between(1, 3) | (col("lo_quantity") > 45))
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year")
        .agg("sum", "lo_extendedprice", "lo_discount", combine="mul")
        .build(db)
    ),
    lambda db: (
        Q("lineorder")
        .where((col("lo_discount") <= 2) & ((col("lo_quantity") < 10) | (col("lo_quantity") > 40)))
        .join("supplier", on=("lo_suppkey", "s_suppkey"), payload="s_region")
        .group_by("s_region")
        .agg("avg", "lo_revenue")
        .build(db)
    ),
]


@pytest.fixture(scope="module", params=START_METHODS)
def pooled(request, tiny_ssb):
    """One sharded session per start method, pool kept warm for the module."""
    session = Session(tiny_ssb, shard_start_method=request.param)
    yield session
    session.close()


class TestPooledDifferential:
    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_all_13_queries(self, tiny_ssb, pooled, name, shards):
        query = QUERIES[name]
        expected_value, expected_profile = execute_query_monolithic(tiny_ssb, query)
        with activate_zones(pooled._zone_cache):
            value, profile = pooled.shard_executor().execute(tiny_ssb, query, shards)
        assert value == expected_value
        assert profile == expected_profile

    @pytest.mark.parametrize("index", range(len(OR_TREE_QUERIES)))
    def test_or_trees(self, tiny_ssb, pooled, index):
        query = OR_TREE_QUERIES[index](tiny_ssb)
        expected_value, expected_profile = execute_query_monolithic(tiny_ssb, query)
        with activate_zones(pooled._zone_cache):
            value, profile = pooled.shard_executor().execute(tiny_ssb, query, 3)
        assert value == expected_value
        assert profile == expected_profile

    def test_session_run_matches_unsharded(self, tiny_ssb, pooled):
        sharded = pooled.run(QUERIES["q4.2"], shards=2, cache=False)
        plain = pooled.run(QUERIES["q4.2"], cache=False)
        assert sharded.records == plain.records
        assert sharded.result.stats == plain.result.stats
        assert sharded.result.time == plain.result.time

    def test_run_many_through_shard_pool(self, tiny_ssb, pooled):
        queries = [QUERIES[name] for name in sorted(QUERIES)[:4]]
        sharded = pooled.run_many(queries, shards=2, cache=False)
        plain = pooled.run_many(queries, cache=False)
        for a, b in zip(sharded, plain):
            assert a.records == b.records

    def test_counters_and_fallbacks(self, tiny_ssb, pooled):
        executor = pooled.shard_executor()
        before = pooled.counters()
        pooled.run(QUERIES["q1.1"], shards=2, cache=False)
        delta = pooled.counters() - before
        assert delta.shard_queries == 1
        assert delta.shard_tasks >= 1
        assert delta.shard_fallbacks == 0
        # An off-database query cannot shard: it falls back, counted.
        from repro.ssb import generate_ssb

        foreign = generate_ssb(scale_factor=0.005, seed=3)
        value, _ = executor.execute(foreign, QUERIES["q1.1"], 2)
        expected, _ = execute_query_monolithic(foreign, QUERIES["q1.1"])
        assert value == expected
        assert executor.stats().fallbacks >= 1


# ----------------------------------------------------------------------
# Satellite 1: execution-cache keying across execution strategies
# ----------------------------------------------------------------------


class TestCacheKeying:
    def test_shards_one_shares_entry_with_plain_and_threaded(self, tiny_ssb):
        with Session(tiny_ssb) as session:
            session.run(QUERIES["q1.1"])  # plain: miss, populates
            info = session.cache_info()
            assert (info.hits, info.misses) == (0, 1)
            session.run(QUERIES["q1.1"], shards=1)  # same key: hit
            info = session.cache_info()
            assert (info.hits, info.misses) == (1, 1)
            # The morsel-threaded path shares the same entries.
            session.run_many([QUERIES["q1.1"]] * 2, workers=2, oversubscribe=True)
            info = session.cache_info()
            assert (info.hits, info.misses) == (3, 1)

    def test_sharded_entries_key_separately_but_agree(self, tiny_ssb):
        with Session(tiny_ssb) as session:
            plain = session.run(QUERIES["q2.1"])
            sharded = session.run(QUERIES["q2.1"], shards=2)
            info = session.cache_info()
            assert info.misses == 2  # distinct entries
            assert session.run(QUERIES["q2.1"], shards=2).records == sharded.records
            assert session.cache_info().hits == 1  # sharded entry replays
            # Truthful profiles: the sharded entry's accounting is the
            # byte-identical fold, so both entries answer identically.
            assert sharded.records == plain.records
            assert sharded.result.stats == plain.result.stats


# ----------------------------------------------------------------------
# Satellite 2: shared-memory leak safety
# ----------------------------------------------------------------------


class TestLeakSafety:
    """Eager-release behaviours the registry must localize per close.

    End-of-run ``/dev/shm`` hygiene is enforced globally by the
    session-scoped ``shm_leak_guard`` fixture in ``conftest.py`` (which
    also covers the chaos suite's worker kills and segment unlinks), so
    these tests no longer keep their own before/after baselines -- they
    pin that segments are released *at close time*, not merely by the end
    of the run.
    """

    @pytest.mark.parametrize("method", START_METHODS)
    def test_session_churn_releases_segments_at_close(self, tiny_ssb, method):
        for _ in range(3):
            with Session(tiny_ssb, shards=2, shard_start_method=method) as session:
                session.run(QUERIES["q1.2"], cache=False)
                executor = session.shard_executor()
                prefix = executor.registry._prefix
                assert executor.registry.num_segments > 0  # segments live
                assert any(prefix in path for path in _shm_segments())
            assert executor.registry.closed
            assert executor.registry.num_segments == 0
            assert not any(prefix in path for path in _shm_segments())

    def test_close_is_idempotent_and_unlinks(self, tiny_ssb):
        session = Session(tiny_ssb, shards=2)
        session.run(QUERIES["q1.1"], cache=False)
        executor = session.shard_executor()
        assert executor.registry.num_segments > 0
        session.close()
        session.close()
        assert executor.registry.closed
        assert executor.registry.num_segments == 0

    def test_registry_refuses_new_segments_after_close(self, tiny_ssb):
        import numpy as np

        from repro.storage.shm import SharedMemoryRegistry

        registry = SharedMemoryRegistry()
        spec = registry.share_array(np.arange(8))
        assert any(spec.segment in path for path in _shm_segments())
        registry.close()
        assert not any(spec.segment in path for path in _shm_segments())
        with pytest.raises(RuntimeError):
            registry.share_array(np.arange(8))


# ----------------------------------------------------------------------
# Validation and service integration
# ----------------------------------------------------------------------


class TestValidationAndService:
    def test_bad_shard_counts_rejected(self, tiny_ssb):
        with pytest.raises(ValueError):
            Session(tiny_ssb, shards=0)
        with Session(tiny_ssb) as session:
            with pytest.raises(ValueError):
                session.run(QUERIES["q1.1"], shards=0)

    def test_bad_start_method_rejected(self, tiny_ssb):
        with pytest.raises(ValueError):
            ShardExecutor(tiny_ssb, start_method="bogus")

    def test_bind_validates(self, tiny_ssb):
        executor = ShardExecutor(tiny_ssb)
        try:
            with pytest.raises(ValueError):
                executor.bind(0)
        finally:
            executor.close()

    def test_query_service_dispatches_sharded(self, tiny_ssb):
        from repro.service.service import QueryService

        async def serve():
            with Session(tiny_ssb) as session:
                async with QueryService(session, shards=2) as service:
                    return await service.submit(QUERIES["q3.1"])

        outcome = asyncio.run(serve())
        expected, _ = execute_query_monolithic(tiny_ssb, QUERIES["q3.1"])
        assert outcome.result.result.value == expected
        assert outcome.trace.counters.shard_queries == 1

    def test_query_service_rejects_bad_shards(self, tiny_ssb):
        from repro.service.service import QueryService

        with Session(tiny_ssb) as session:
            with pytest.raises(ValueError):
                QueryService(session, shards=0)
