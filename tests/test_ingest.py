"""Streaming ingest: versioned appends, incremental maintenance, differentials.

The headline acceptance suite of the ingest subsystem is differential, in
two directions:

* **Across planes** -- after every ingest step, all 13 SSB queries answer
  byte-identically on the monolithic reference executor, the unpruned
  selection-vector plane, and the zone-pruned plane, and identically to a
  from-scratch session built over the grown database.

* **Across time** -- a :class:`~repro.ingest.StandingQuery`'s incrementally
  merged answer equals a full re-evaluation at every version, while the
  cache counters prove the work was delta-proportional: zone maps extend
  instead of rebuilding, unchanged dimensions' build artifacts report hits,
  and an append to one dimension invalidates exactly one artifact.
"""

import asyncio
import threading

import numpy as np
import pytest

from repro.api import Q, Session
from repro.engine.plan import execute_query_monolithic
from repro.engine.physical import lower_query
from repro.ingest import IngestBuffer
from repro.service import IngestResult, QueryService
from repro.ssb import QUERIES, QUERY_ORDER, generate_lineorder_batch, generate_ssb, schema
from repro.storage.compression import BitPackedColumn
from repro.storage.zonemap import DEFAULT_ZONE_SIZE, ColumnZoneStats, TableZoneMaps

GUARD_S = 30.0


def run(coro):
    async def guarded():
        return await asyncio.wait_for(coro, timeout=GUARD_S)

    return asyncio.run(guarded())


@pytest.fixture()
def ssb():
    """A function-scoped SSB database: ingest tests mutate their data."""
    return generate_ssb(scale_factor=0.01, seed=21)


def supplier_batch(db, rows=50, seed=3):
    """Append-ready rows for the supplier dimension (fresh, unused keys)."""
    rng = np.random.default_rng(seed)
    supplier = db.table("supplier")
    regions = ["ASIA", "AMERICA", "EUROPE", "AFRICA", "MIDDLE EAST"]
    nation = {"ASIA": "CHINA", "AMERICA": "BRAZIL", "EUROPE": "FRANCE",
              "AFRICA": "KENYA", "MIDDLE EAST": "IRAN"}
    chosen = [regions[i] for i in rng.integers(0, len(regions), rows)]
    return {
        "s_suppkey": np.arange(rows, dtype=np.int32) + supplier.num_rows,
        "s_region": np.array(chosen),
        "s_nation": np.array([nation[r] for r in chosen]),
        "s_city": np.array([schema.city_name(nation[r], rng.integers(0, 10)) for r in chosen]),
    }


# ----------------------------------------------------------------------
# Table.append: validation and atomic seal-then-publish
# ----------------------------------------------------------------------


class TestTableAppend:
    def test_append_bumps_version_and_grows_rows(self, ssb):
        fact = ssb.table("lineorder")
        base = fact.num_rows
        assert fact.version == 0
        batch = generate_lineorder_batch(ssb, 100, seed=1)
        assert fact.append(batch) == 1
        assert fact.version == 1
        assert fact.num_rows == base + 100
        np.testing.assert_array_equal(fact["lo_quantity"][base:], batch["lo_quantity"])

    def test_snapshot_pins_the_pre_append_state(self, ssb):
        fact = ssb.table("lineorder")
        snap = fact.snapshot()
        rows_before = snap.num_rows
        fact.append(generate_lineorder_batch(ssb, 64, seed=2))
        assert snap.num_rows == rows_before
        assert snap.version == 0
        assert fact.snapshot().num_rows == rows_before + 64
        # A snapshot of a snapshot is itself (no copy chain).
        assert snap.snapshot() is snap

    def test_snapshot_refuses_append(self, ssb):
        snap = ssb.table("lineorder").snapshot()
        with pytest.raises(ValueError, match="frozen snapshot"):
            snap.append(generate_lineorder_batch(ssb, 8, seed=3))

    def test_empty_batch_publishes_nothing(self, ssb):
        fact = ssb.table("lineorder")
        empty = {name: np.empty(0, dtype=np.int32) for name in fact.columns}
        assert fact.append(empty) == 0
        assert fact.version == 0

    def test_missing_and_unknown_columns_raise(self, ssb):
        fact = ssb.table("lineorder")
        batch = generate_lineorder_batch(ssb, 8, seed=4)
        missing = {k: v for k, v in batch.items() if k != "lo_revenue"}
        with pytest.raises(ValueError, match="missing \\['lo_revenue'\\]"):
            fact.append(missing)
        extra = dict(batch, lo_bogus=np.zeros(8, dtype=np.int32))
        with pytest.raises(ValueError, match="unknown \\['lo_bogus'\\]"):
            fact.append(extra)

    def test_ragged_batch_raises(self, ssb):
        fact = ssb.table("lineorder")
        batch = generate_lineorder_batch(ssb, 8, seed=5)
        batch["lo_quantity"] = batch["lo_quantity"][:4]
        with pytest.raises(ValueError, match="ragged"):
            fact.append(batch)

    def test_lossy_dtype_cast_raises(self, ssb):
        fact = ssb.table("lineorder")
        batch = generate_lineorder_batch(ssb, 2, seed=6)
        batch["lo_quantity"] = np.array([1.0, 2.5])  # 2.5 does not fit int32
        with pytest.raises(ValueError, match="losslessly"):
            fact.append(batch)

    def test_string_values_encode_through_the_dictionary(self, ssb):
        supplier = ssb.table("supplier")
        base = supplier.num_rows
        batch = supplier_batch(ssb, rows=10)
        assert supplier.append(batch) == 1
        decoded = supplier.dictionaries["s_region"].decode(supplier["s_region"][base:])
        np.testing.assert_array_equal(decoded, batch["s_region"])

    def test_unknown_dictionary_label_raises(self, ssb):
        supplier = ssb.table("supplier")
        batch = supplier_batch(ssb, rows=1)
        batch["s_region"] = np.array(["ATLANTIS"])
        with pytest.raises(KeyError):
            supplier.append(batch)


# ----------------------------------------------------------------------
# Incremental statistics: packed twins and zone maps extend exactly
# ----------------------------------------------------------------------


class TestBitPackedExtend:
    @pytest.mark.parametrize("width_max", [1, 20, 300, 40_000])
    def test_extend_is_byte_identical_to_fresh_pack(self, rng, width_max):
        head = rng.integers(0, width_max + 1, 10_000)
        tail = rng.integers(0, width_max + 1, 3_333)
        extended = BitPackedColumn.pack(head, name="x").extend(tail)
        fresh = BitPackedColumn.pack(np.concatenate([head, tail]), name="x")
        assert extended.bit_width == fresh.bit_width
        assert extended.num_values == fresh.num_values
        np.testing.assert_array_equal(extended.packed, fresh.packed)
        np.testing.assert_array_equal(extended.unpack(), np.concatenate([head, tail]))

    def test_wider_tail_raises(self, rng):
        packed = BitPackedColumn.pack(rng.integers(0, 8, 100), name="x")
        with pytest.raises(ValueError, match="repack from scratch"):
            packed.extend(np.array([1 << 20]))

    def test_empty_tail_is_identity(self, rng):
        packed = BitPackedColumn.pack(rng.integers(0, 8, 100), name="x")
        assert packed.extend(np.empty(0, dtype=np.int64)) is packed


class TestZoneStatsExtend:
    def equal_stats(self, a: ColumnZoneStats, b: ColumnZoneStats):
        assert a.num_rows == b.num_rows
        assert (a.low, a.high) == (b.low, b.high)
        np.testing.assert_array_equal(a.mins, b.mins)
        np.testing.assert_array_equal(a.maxs, b.maxs)
        if a.bitsets is None:
            assert b.bitsets is None
        else:
            np.testing.assert_array_equal(a.bitsets, b.bitsets)

    @pytest.mark.parametrize("head_rows, tail_rows", [
        (4096 * 2, 100),          # sealed zones + new partial zone
        (4096 * 2 + 50, 100),     # partial tail re-reduced in place
        (4096 * 2 + 50, 4096 * 3),  # tail spans several new zones
        (10, 5),                  # single partial zone grows
    ])
    def test_extend_matches_fresh_build(self, rng, head_rows, tail_rows):
        head = rng.integers(0, 50, head_rows)
        tail = rng.integers(0, 50, tail_rows)
        grown = np.concatenate([head, tail])
        extended = ColumnZoneStats.build("x", head, 4096).extend(grown)
        self.equal_stats(extended, ColumnZoneStats.build("x", grown, 4096))

    def test_extend_rebases_bitsets_when_low_drops(self, rng):
        head = rng.integers(10, 40, 4096 * 2)      # low = 10
        tail = rng.integers(0, 40, 300)            # low drops to 0; span still <= 64
        grown = np.concatenate([head, tail])
        extended = ColumnZoneStats.build("x", head, 4096).extend(grown)
        fresh = ColumnZoneStats.build("x", grown, 4096)
        assert fresh.bitsets is not None
        self.equal_stats(extended, fresh)

    def test_extend_drops_bitsets_when_domain_widens_past_64(self, rng):
        head = rng.integers(0, 50, 4096)
        grown = np.concatenate([head, np.array([500])])
        extended = ColumnZoneStats.build("x", head, 4096).extend(grown)
        self.equal_stats(extended, ColumnZoneStats.build("x", grown, 4096))
        assert extended.bitsets is None

    def test_shrunk_column_raises(self, rng):
        stats = ColumnZoneStats.build("x", rng.integers(0, 50, 100), 4096)
        with pytest.raises(ValueError, match="shrank"):
            stats.extend(np.arange(10))

    def test_extended_to_matches_fresh_maps(self, ssb):
        fact = ssb.table("lineorder")
        maps = TableZoneMaps(fact.snapshot())
        # Touch a stats column and a packed twin so there is state to carry.
        assert maps.stats("lo_quantity") is not None
        assert maps.packed("lo_quantity") is not None
        assert maps.stats("lo_orderdate") is not None
        fact.append(generate_lineorder_batch(ssb, 5000, seed=9))
        grown = fact.snapshot()
        ext = maps.extended_to(grown)
        fresh = TableZoneMaps(grown)
        for column in ("lo_quantity", "lo_orderdate"):
            TestZoneStatsExtend().equal_stats(ext.stats(column), fresh.stats(column))
        np.testing.assert_array_equal(
            ext.packed("lo_quantity").packed, fresh.packed("lo_quantity").packed
        )
        # Never-touched columns stay lazy in the extended instance too.
        assert "lo_revenue" not in ext._stats


# ----------------------------------------------------------------------
# The differential acceptance suite: 13 queries x 3 ingest steps x 3 planes
# ----------------------------------------------------------------------


class TestDifferentialIngest:
    def test_all_queries_all_planes_all_versions(self, ssb):
        pruned = Session(ssb)            # zone-pruned plane, caches versioned
        unpruned = Session(ssb, zones=False)  # selection-vector plane
        standing = {name: pruned.register_standing(QUERIES[name]) for name in QUERY_ORDER}

        for step in range(3):
            before = pruned.counters()
            version = pruned.ingest(
                "lineorder", generate_lineorder_batch(ssb, DEFAULT_ZONE_SIZE, seed=30 + step)
            )
            assert version == step + 1
            fresh = Session(ssb)  # from-scratch reference at this version
            for name in QUERY_ORDER:
                query = QUERIES[name]
                reference, _ = execute_query_monolithic(ssb, query)
                assert pruned.run(query).value == reference, (name, "pruned plane")
                assert unpruned.run(query).value == reference, (name, "unpruned plane")
                assert fresh.run(query).value == reference, (name, "fresh session")
                assert standing[name].answer() == reference, (name, "standing query")
                assert standing[name].versions["lineorder"] == version
            delta = pruned.counters() - before
            # Zone maps were extended, not rebuilt: after the first step
            # builds them, appends cost extension events and zero misses.
            if step > 0:
                assert delta.zone_extensions >= 1
                assert delta.zone_misses == 0

        # Standing-query work was delta-proportional: the three dimension
        # artifacts of a 3-join query were built exactly once (registration)
        # and hit on every later tick, including 4-join q4.x dimensions.
        for name in QUERY_ORDER:
            info = standing[name].build_cache_info()
            distinct = len(lower_query(QUERIES[name]).builds)
            parts = 2 if QUERIES[name].aggregate.op == "avg" else 1
            assert info.misses == distinct
            assert info.hits == distinct * 3 * parts  # 3 ingest ticks
            assert standing[name].ticks == 4  # registration + 3 ingests
            assert standing[name].full_refreshes == 1

    def test_standing_scalar_and_avg_ops(self, ssb):
        session = Session(ssb)
        count_q = Q("lineorder", db=ssb).agg("count").build(ssb)
        avg_q = (
            Q("lineorder", db=ssb)
            .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
            .group_by("d_year")
            .agg("avg", "lo_quantity")
            .build(ssb)
        )
        minmax_q = Q("lineorder", db=ssb).filter("lo_discount", "ge", 9).agg("max", "lo_revenue").build(ssb)
        handles = [
            session.register_standing(q, name=f"sq{i}")
            for i, q in enumerate((count_q, avg_q, minmax_q))
        ]
        for step in range(3):
            session.ingest("lineorder", generate_lineorder_batch(ssb, 1000, seed=60 + step))
            fresh = Session(ssb, cache=False)
            for handle, query in zip(handles, (count_q, avg_q, minmax_q)):
                assert handle.answer() == fresh.run(query).value, query.name

    def test_dimension_append_triggers_one_full_refresh(self, ssb):
        session = Session(ssb)
        handle = session.register_standing(QUERIES["q2.1"])
        session.ingest("lineorder", generate_lineorder_batch(ssb, 500, seed=70))
        assert handle.full_refreshes == 1
        ssb.table("supplier").append(supplier_batch(ssb))
        session.ingest("lineorder", generate_lineorder_batch(ssb, 500, seed=71))
        assert handle.full_refreshes == 2  # the dimension change forced one
        reference, _ = execute_query_monolithic(ssb, QUERIES["q2.1"])
        assert handle.answer() == reference

    def test_noop_refresh_does_no_work(self, ssb):
        session = Session(ssb)
        handle = session.register_standing(QUERIES["q1.1"])
        ticks = handle.ticks
        assert handle.refresh() is False
        assert handle.ticks == ticks


# ----------------------------------------------------------------------
# Versioned cache invalidation: only what changed rebuilds
# ----------------------------------------------------------------------


class TestVersionedInvalidation:
    def test_execution_memo_keeps_old_version_entries(self, ssb):
        session = Session(ssb)
        old = session.run(QUERIES["q1.1"]).value
        session.ingest("lineorder", generate_lineorder_batch(ssb, 2000, seed=80))
        new = session.run(QUERIES["q1.1"]).value  # miss: version changed
        assert new != old
        info = session.cache_info()
        assert info.misses == 2 and info.size == 2  # both versions resident
        session.run(QUERIES["q1.1"])
        assert session.cache_info().hits == 1  # current version replays

    def test_dimension_append_invalidates_exactly_one_artifact(self, ssb):
        session = Session(ssb, cache=False)  # force execution; isolate builds
        queries = [QUERIES["q2.1"]] * 4
        session.run_many(queries, share_builds=True)
        before = session.cache_info("builds")
        ssb.table("part").append({
            "p_partkey": np.array([ssb.table("part").num_rows], dtype=np.int32),
            "p_mfgr": np.array(["MFGR#1"]),
            "p_category": np.array(["MFGR#11"]),
            "p_brand1": np.array(["MFGR#1111"]),
        })
        session.run_many(queries, share_builds=True, workers=4, oversubscribe=True)
        delta_misses = session.cache_info("builds").misses - before.misses
        assert delta_misses == 1  # the part build, exactly once, despite 4 workers
        reference, _ = execute_query_monolithic(ssb, QUERIES["q2.1"])
        assert session.run(QUERIES["q2.1"]).value == reference

    def test_unchanged_tables_keep_hitting_after_other_table_grows(self, ssb):
        session = Session(ssb)
        date_count = Q("date", db=ssb).agg("count").build(ssb)
        session.run(date_count)
        session.ingest("lineorder", generate_lineorder_batch(ssb, 100, seed=81))
        session.run(date_count)  # lineorder's version is irrelevant to this key
        assert session.cache_info().hits == 1


class TestClearCaches:
    def test_clear_caches_drops_everything_and_zeroes_counters(self, ssb):
        session = Session(ssb)
        session.run_many([QUERIES["q2.1"], QUERIES["q1.1"]], share_builds=True)
        assert session.cache_info().size > 0
        assert session.cache_info("builds").size > 0
        assert session.cache_info("zones").misses > 0
        session.clear_caches()
        for kind in ("execution", "builds"):
            info = session.cache_info(kind)
            assert (info.hits, info.misses, info.size) == (0, 0, 0)
        assert session.cache_info("zones") == (0, 0, 0, 0, 0, 0, 0, 0)

    def test_clear_cache_alias_is_preserved(self, ssb):
        session = Session(ssb)
        session.run(QUERIES["q1.1"])
        session.clear_cache()
        assert session.cache_info().size == 0


# ----------------------------------------------------------------------
# Partial-tail zone accounting stays exact under appends (regression)
# ----------------------------------------------------------------------


class TestPartialTailPruneCounters:
    def test_rows_pruned_counts_actual_rows_not_zone_width(self, ssb):
        # 60 000 rows is not a zone multiple, so the tail zone is partial
        # from the start; a predicate no row satisfies skips every zone and
        # must report exactly the actual row count, not zones * 4096.
        session = Session(ssb)
        nothing = Q("lineorder", db=ssb).filter("lo_quantity", "lt", 1).agg("count").build(ssb)
        assert session.run(nothing).value == 0.0
        assert session.cache_info("zones").rows_pruned == ssb.table("lineorder").num_rows

    def test_rows_pruned_stays_exact_after_partial_tail_append(self, ssb):
        session = Session(ssb)
        nothing = Q("lineorder", db=ssb).filter("lo_quantity", "lt", 1).agg("count").build(ssb)
        session.run(nothing)
        session.ingest("lineorder", generate_lineorder_batch(ssb, 100, seed=90))
        before = session.cache_info("zones").rows_pruned
        session.run(nothing)
        grown = ssb.table("lineorder").num_rows
        assert session.cache_info("zones").rows_pruned - before == grown
        delta = session.counters()
        assert delta.zone_extensions == 1  # maps extended, not rebuilt


# ----------------------------------------------------------------------
# IngestBuffer: zone-aligned sealing
# ----------------------------------------------------------------------


class TestIngestBuffer:
    def test_seals_exactly_at_zone_boundaries(self, ssb):
        fact = ssb.table("lineorder")
        base = fact.num_rows
        buffer = IngestBuffer(fact)
        chunk = generate_lineorder_batch(ssb, 1500, seed=40)
        assert buffer.add(chunk) == []           # 1500 staged
        assert buffer.staged_rows == 1500
        chunk2 = generate_lineorder_batch(ssb, 3000, seed=41)
        versions = buffer.add(chunk2)            # 4500 staged -> one batch
        assert versions == [1]
        assert buffer.staged_rows == 4500 - DEFAULT_ZONE_SIZE
        assert fact.num_rows == base + DEFAULT_ZONE_SIZE

    def test_large_chunk_seals_multiple_batches(self, ssb):
        fact = ssb.table("lineorder")
        buffer = IngestBuffer(fact, batch_rows=1000)
        versions = buffer.add(generate_lineorder_batch(ssb, 3500, seed=42))
        assert versions == [1, 2, 3]
        assert buffer.staged_rows == 500
        assert buffer.sealed_rows == 3000

    def test_flush_seals_the_partial_remainder(self, ssb):
        fact = ssb.table("lineorder")
        base = fact.num_rows
        buffer = IngestBuffer(fact, batch_rows=1000)
        buffer.add(generate_lineorder_batch(ssb, 700, seed=43))
        assert buffer.flush() == 1
        assert fact.num_rows == base + 700
        assert buffer.flush() is None  # nothing left

    def test_on_seal_callback_fires_per_batch(self, ssb):
        sealed = []
        buffer = IngestBuffer(
            ssb.table("lineorder"), batch_rows=1000,
            on_seal=lambda version, rows: sealed.append((version, rows)),
        )
        buffer.add(generate_lineorder_batch(ssb, 2200, seed=44))
        buffer.flush()
        assert sealed == [(1, 1000), (2, 1000), (3, 200)]

    def test_bad_chunks_fail_fast(self, ssb):
        buffer = IngestBuffer(ssb.table("lineorder"))
        with pytest.raises(ValueError, match="missing"):
            buffer.add({"lo_quantity": np.arange(4)})
        chunk = generate_lineorder_batch(ssb, 8, seed=45)
        chunk["lo_quantity"] = chunk["lo_quantity"][:4]
        with pytest.raises(ValueError, match="ragged"):
            buffer.add(chunk)
        assert buffer.staged_rows == 0  # nothing half-staged


# ----------------------------------------------------------------------
# Service integration: reads interleaved with ingest, never a torn batch
# ----------------------------------------------------------------------


class TestServiceIngest:
    def test_interleaved_ingest_and_reads(self, ssb):
        session = Session(ssb)
        base = ssb.table("lineorder").num_rows
        count_q = Q("lineorder", db=ssb).agg("count").build(ssb)
        batch = 512

        async def go():
            async with QueryService(session, max_inflight=2) as svc:
                results = await asyncio.gather(*(
                    svc.ingest("lineorder", generate_lineorder_batch(ssb, batch, seed=50 + i))
                    if i % 2 == 0
                    else svc.submit(count_q)
                    for i in range(8)
                ))
                await svc.drain()
                return results

        results = run(go())
        ingests = [r for r in results if isinstance(r, IngestResult)]
        assert sorted(r.version for r in ingests) == [1, 2, 3, 4]
        assert all(r.table == "lineorder" and r.rows == batch for r in ingests)
        for r in results:
            versions = r.trace.table_versions
            assert versions is not None and 0 <= versions["lineorder"] <= 4
            if not isinstance(r, IngestResult):
                # Admitted reads see whole sealed batches, never a torn one.
                assert (r.result.value - base) % batch == 0
        assert ssb.table("lineorder").num_rows == base + 4 * batch

    def test_ingest_validates_the_table_name_at_admission(self, ssb):
        session = Session(ssb)

        async def go():
            async with QueryService(session) as svc:
                with pytest.raises(KeyError, match="nope"):
                    await svc.ingest("nope", {"x": np.arange(3)})

        run(go())


# ----------------------------------------------------------------------
# The hammer: concurrent ingest vs morsel-parallel reads
# ----------------------------------------------------------------------


class TestConcurrentIngestHammer:
    def test_readers_only_ever_see_fully_sealed_versions(self, ssb):
        session = Session(ssb, cache=False)  # force real executions
        fact = ssb.table("lineorder")
        base = fact.num_rows
        batch, num_batches = 1000, 12
        count_q = Q("lineorder", db=ssb).agg("count").build(ssb)
        stop = threading.Event()

        def writer():
            for i in range(num_batches):
                fact.append(generate_lineorder_batch(ssb, batch, seed=200 + i))
            stop.set()

        thread = threading.Thread(target=writer)
        thread.start()
        observed = []
        try:
            while not stop.is_set():
                results = session.run_many([count_q] * 4, workers=4, oversubscribe=True)
                observed.extend(result.value for result in results)
        finally:
            thread.join()
        observed.append(session.run(count_q).value)
        for value in observed:
            k, remainder = divmod(value - base, batch)
            assert remainder == 0, f"torn read: saw {value} rows"
            assert 0 <= k <= num_batches
        assert observed[-1] == base + num_batches * batch

    def test_racing_workers_rebuild_an_invalidated_artifact_exactly_once(self, ssb):
        session = Session(ssb, cache=False)
        queries = [QUERIES["q3.1"]] * 8
        session.run_many(queries, share_builds=True, workers=4, oversubscribe=True)
        baseline = session.cache_info("builds")
        # Grow one dimension, hammer again: its artifact misses exactly once
        # (the in-flight arbitration), everything else keeps hitting.
        ssb.table("supplier").append(supplier_batch(ssb))
        session.run_many(queries, share_builds=True, workers=4, oversubscribe=True)
        info = session.cache_info("builds")
        assert info.misses - baseline.misses == 1
        reference, _ = execute_query_monolithic(ssb, QUERIES["q3.1"])
        assert session.run(QUERIES["q3.1"]).value == reference

    def test_concurrent_ingest_and_standing_refresh(self, ssb):
        session = Session(ssb)
        handle = session.register_standing(QUERIES["q1.1"])
        buffer = IngestBuffer(
            ssb.table("lineorder"), batch_rows=1000,
            on_seal=lambda version, rows: handle.refresh(),
        )
        threads = [
            threading.Thread(
                target=lambda i=i: buffer.add(generate_lineorder_batch(ssb, 500, seed=300 + i))
            )
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        buffer.flush()
        handle.refresh()
        reference, _ = execute_query_monolithic(ssb, QUERIES["q1.1"])
        assert handle.answer() == reference
