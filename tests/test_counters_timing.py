"""Tests for traffic counters, time breakdowns, memory helpers, and PCIe."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.counters import TrafficCounter
from repro.hardware.interconnect import PCIeLink
from repro.hardware.memory import AccessPattern, Device, MemoryRegion, random_access_bytes, transfer_time_seconds
from repro.sim.timing import TimeBreakdown


class TestTrafficCounter:
    def test_merge_accumulates_extensive_quantities(self):
        a = TrafficCounter(sequential_read_bytes=100, random_accesses=10, random_working_set_bytes=1000)
        b = TrafficCounter(sequential_read_bytes=50, random_accesses=30, random_working_set_bytes=500)
        a.merge(b)
        assert a.sequential_read_bytes == 150
        assert a.random_accesses == 40
        # Working set keeps the largest value (it is intensive).
        assert a.random_working_set_bytes == 1000

    def test_merge_weights_access_bytes(self):
        a = TrafficCounter(random_accesses=10, random_access_bytes=8)
        b = TrafficCounter(random_accesses=30, random_access_bytes=16)
        a.merge(b)
        assert a.random_access_bytes == pytest.approx((10 * 8 + 30 * 16) / 40)

    def test_add_operator_does_not_mutate(self):
        a = TrafficCounter(sequential_read_bytes=100)
        b = TrafficCounter(sequential_read_bytes=50)
        c = a + b
        assert c.sequential_read_bytes == 150
        assert a.sequential_read_bytes == 100

    def test_scaled_preserves_intensive_quantities(self):
        counter = TrafficCounter(
            sequential_read_bytes=100, random_accesses=10,
            random_working_set_bytes=1000, branch_miss_rate=0.3, data_dependent_branches=10,
        )
        scaled = counter.scaled(4)
        assert scaled.sequential_read_bytes == 400
        assert scaled.random_accesses == 40
        assert scaled.random_working_set_bytes == 1000
        assert scaled.branch_miss_rate == 0.3

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            TrafficCounter().scaled(-1)

    def test_total_device_bytes(self):
        counter = TrafficCounter(sequential_read_bytes=100, sequential_write_bytes=50,
                                 random_accesses=10, random_access_bytes=8)
        assert counter.total_device_bytes == 100 + 50 + 80

    @given(factor=st.floats(min_value=0, max_value=1e6),
           reads=st.floats(min_value=0, max_value=1e12))
    def test_scaling_is_linear(self, factor, reads):
        counter = TrafficCounter(sequential_read_bytes=reads)
        assert counter.scaled(factor).sequential_read_bytes == pytest.approx(reads * factor)


class TestTimeBreakdown:
    def test_add_and_total(self):
        time = TimeBreakdown()
        time.add("a", 0.5).add("b", 0.25).add("a", 0.5)
        assert time.components["a"] == 1.0
        assert time.total_seconds == pytest.approx(1.25)
        assert time.total_ms == pytest.approx(1250.0)

    def test_add_rejects_negative(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("a", -1.0)

    def test_merge_with_prefix(self):
        a = TimeBreakdown({"x": 1.0})
        b = TimeBreakdown({"y": 2.0})
        a.merge(b, prefix="phase.")
        assert a.components == {"x": 1.0, "phase.y": 2.0}

    def test_scaled(self):
        time = TimeBreakdown({"x": 1.0, "y": 3.0})
        scaled = time.scaled(0.5)
        assert scaled.total_seconds == pytest.approx(2.0)
        assert time.total_seconds == pytest.approx(4.0)

    def test_dominant_component(self):
        assert TimeBreakdown({"x": 1.0, "y": 3.0}).dominant_component() == "y"
        assert TimeBreakdown().dominant_component() is None

    def test_addition_operator(self):
        total = TimeBreakdown({"x": 1.0}) + TimeBreakdown({"x": 2.0, "y": 1.0})
        assert total.components == {"x": 3.0, "y": 1.0}

    def test_single_constructor(self):
        assert TimeBreakdown.single("only", 2.0).total_seconds == 2.0


class TestMemoryHelpers:
    def test_transfer_time(self):
        assert transfer_time_seconds(1e9, 1e9) == pytest.approx(1.0)

    def test_transfer_time_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            transfer_time_seconds(1.0, 0.0)

    def test_random_access_bytes(self):
        assert random_access_bytes(10, 64) == 640

    def test_memory_region(self):
        region = MemoryRegion(device=Device.GPU, size_bytes=1024)
        assert region.on_gpu() and not region.on_cpu()
        with pytest.raises(ValueError):
            MemoryRegion(device=Device.CPU, size_bytes=-1)

    def test_access_pattern_enum(self):
        assert AccessPattern.SEQUENTIAL.value == "sequential"


class TestPCIeLink:
    def test_transfer_seconds_includes_latency(self):
        link = PCIeLink(bandwidth_bytes_per_s=10e9, latency_s=1e-5)
        assert link.transfer_seconds(10e9) == pytest.approx(1.0 + 1e-5)
        assert link.transfer_seconds(0) == 0.0

    def test_round_trip_duplex_vs_half(self):
        duplex = PCIeLink(bandwidth_bytes_per_s=10e9, duplex=True)
        half = PCIeLink(bandwidth_bytes_per_s=10e9, duplex=False)
        assert duplex.round_trip_seconds(1e9, 1e9) < half.round_trip_seconds(1e9, 1e9)

    def test_overlap_with_kernel_takes_max(self):
        link = PCIeLink(bandwidth_bytes_per_s=10e9, latency_s=0.0)
        assert link.overlapped_with_kernel(10e9, 0.5) == pytest.approx(1.0)
        assert link.overlapped_with_kernel(10e9, 2.0) == pytest.approx(2.0)

    def test_rejects_invalid_configuration(self):
        with pytest.raises(ValueError):
            PCIeLink(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            PCIeLink().transfer_seconds(-1)
