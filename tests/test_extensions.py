"""Tests for the extension modules: radix join, planner, compression, capacity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis.capacity import MultiGPUConfig, PlacementAdvice, gpus_needed, placement_advice
from repro.engine.planner import JoinOrderPlanner
from repro.hardware.presets import NVIDIA_V100, bandwidth_ratio
from repro.ops.cpu import cpu_hash_join_build, cpu_hash_join_probe, cpu_radix_join
from repro.ops.gpu import gpu_radix_join
from repro.ssb.queries import QUERIES
from repro.storage.compression import BitPackedColumn, bits_needed, pack_table_columns


@pytest.fixture(scope="module")
def join_inputs():
    rng = np.random.default_rng(61)
    build_keys = np.arange(1 << 13)
    build_values = rng.integers(0, 1000, 1 << 13)
    probe_keys = rng.integers(0, 1 << 14, 1 << 15)
    probe_values = rng.integers(0, 1000, 1 << 15)
    matched = probe_keys < (1 << 13)
    expected = float(np.sum(probe_values[matched] + build_values[probe_keys[matched]]))
    return build_keys, build_values, probe_keys, probe_values, expected


class TestRadixJoin:
    def test_cpu_radix_join_checksum(self, join_inputs):
        build_keys, build_values, probe_keys, probe_values, expected = join_inputs
        result = cpu_radix_join(build_keys, build_values, probe_keys, probe_values)
        assert result.value == pytest.approx(expected)
        assert result.stat("radix_bits") >= 0

    def test_gpu_radix_join_checksum(self, join_inputs):
        build_keys, build_values, probe_keys, probe_values, expected = join_inputs
        result = gpu_radix_join(build_keys, build_values, probe_keys, probe_values)
        assert result.value == pytest.approx(expected)

    def test_radix_join_matches_no_partitioning_join(self, join_inputs):
        build_keys, build_values, probe_keys, probe_values, _ = join_inputs
        table, _ = cpu_hash_join_build(build_keys, build_values)
        baseline = cpu_hash_join_probe(probe_keys, probe_values, table, "scalar")
        radix = cpu_radix_join(build_keys, build_values, probe_keys, probe_values)
        assert radix.value == pytest.approx(baseline.value)

    def test_partitions_fit_target_budget(self, join_inputs):
        build_keys, build_values, probe_keys, probe_values, _ = join_inputs
        result = cpu_radix_join(
            build_keys, build_values, probe_keys, probe_values, target_partition_bytes=32 * 1024
        )
        assert result.stat("partition_hash_table_bytes") <= 2 * 32 * 1024

    def test_small_build_skips_partitioning(self):
        rng = np.random.default_rng(3)
        build_keys = np.arange(128)
        build_values = rng.integers(0, 10, 128)
        probe_keys = rng.integers(0, 128, 1024)
        probe_values = rng.integers(0, 10, 1024)
        result = cpu_radix_join(build_keys, build_values, probe_keys, probe_values)
        assert result.stat("radix_bits") == 0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            cpu_radix_join(np.arange(4), np.arange(5), np.arange(4), np.arange(4))


class TestJoinOrderPlanner:
    def test_selectivity_estimates(self, tiny_ssb):
        planner = JoinOrderPlanner(tiny_ssb)
        query = QUERIES["q2.1"]
        assert planner.join_selectivity(query, "supplier") == pytest.approx(0.2, abs=0.15)
        assert planner.join_selectivity(query, "part") == pytest.approx(1 / 25, abs=0.03)
        assert planner.join_selectivity(query, "date") == 1.0

    def test_best_order_puts_selective_joins_first(self, tiny_ssb):
        planner = JoinOrderPlanner(tiny_ssb)
        best = planner.best_order(QUERIES["q2.1"], fact_rows=120_000_000)
        # The unfiltered date join should never come first.
        assert best.join_order[0] != "date"
        assert best.join_order[-1] == "date" or best.selectivities[-1] == 1.0

    def test_enumerate_covers_all_permutations(self, tiny_ssb):
        planner = JoinOrderPlanner(tiny_ssb)
        choices = planner.enumerate(QUERIES["q2.1"])
        assert len(choices) == 6  # 3! join orders
        costs = [c.estimated_seconds for c in choices]
        assert costs == sorted(costs)

    def test_reorder_preserves_query_semantics(self, tiny_ssb):
        from repro.engine.plan import execute_query

        planner = JoinOrderPlanner(tiny_ssb)
        original = QUERIES["q2.1"]
        reordered = planner.reorder(original)
        assert {j.dimension for j in reordered.joins} == {j.dimension for j in original.joins}
        value_original, _ = execute_query(tiny_ssb, original)
        value_reordered, _ = execute_query(tiny_ssb, reordered)
        assert value_original == value_reordered


class TestBitPacking:
    def test_bits_needed(self):
        assert bits_needed(0) == 1
        assert bits_needed(1) == 1
        assert bits_needed(255) == 8
        assert bits_needed(256) == 9
        with pytest.raises(ValueError):
            bits_needed(-1)

    def test_round_trip_small_domain(self):
        values = np.array([0, 1, 2, 3, 7, 5, 4], dtype=np.int64)
        packed = BitPackedColumn.pack(values, name="x")
        assert packed.bit_width == 3
        assert np.array_equal(packed.unpack(), values)

    def test_round_trip_cross_word_boundaries(self):
        rng = np.random.default_rng(71)
        values = rng.integers(0, 2**20, 10_000)
        packed = BitPackedColumn.pack(values)
        assert np.array_equal(packed.unpack(), values)

    def test_compression_ratio_for_ssb_like_columns(self):
        # lo_discount has 11 distinct values -> 4 bits vs 32 bits stored.
        discount = np.arange(11)
        packed = BitPackedColumn.pack(discount, name="lo_discount")
        assert packed.compression_ratio == pytest.approx(8.0, rel=0.2)
        assert packed.scan_speedup() == pytest.approx(packed.compression_ratio)

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            BitPackedColumn.pack(np.array([-1, 3]))

    def test_pack_table_columns(self):
        packed = pack_table_columns({"a": np.arange(16), "b": np.arange(4)})
        assert set(packed) == {"a", "b"}
        assert packed["a"].bit_width == 4

    @settings(max_examples=30, deadline=None)
    @given(values=hnp.arrays(np.int64, st.integers(min_value=1, max_value=500),
                             elements=st.integers(min_value=0, max_value=2**30)))
    def test_round_trip_property(self, values):
        packed = BitPackedColumn.pack(values)
        assert np.array_equal(packed.unpack(), values)


class TestCapacityPlanning:
    def test_gpus_needed(self):
        assert gpus_needed(0) == 1
        assert gpus_needed(20 * 2**30) == 1
        assert gpus_needed(100 * 2**30) == 4
        with pytest.raises(ValueError):
            gpus_needed(-1)

    def test_multi_gpu_capacity_and_speedup(self):
        config = MultiGPUConfig(num_gpus=4)
        assert config.total_capacity_bytes > 3 * NVIDIA_V100.global_capacity_bytes * 0.8
        assert config.speedup_over_cpu() > bandwidth_ratio()
        single = MultiGPUConfig(num_gpus=1)
        assert single.speedup_over_cpu() == pytest.approx(bandwidth_ratio())

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            MultiGPUConfig(num_gpus=0)
        with pytest.raises(ValueError):
            MultiGPUConfig(num_gpus=1, scaling_efficiency=0.0)

    def test_placement_gpu_resident_when_it_fits(self):
        advice = placement_advice(working_set_bytes=13 * 2**30, available_gpus=1)
        assert advice.strategy == "gpu-resident"
        assert advice.gpus_required == 1
        assert advice.expected_speedup_over_cpu > bandwidth_ratio()

    def test_placement_cpu_when_it_does_not_fit(self):
        advice = placement_advice(working_set_bytes=500 * 2**30, available_gpus=2)
        assert advice.strategy == "cpu"
        assert advice.gpus_required > 2
        assert advice.expected_speedup_over_cpu == 1.0
        assert "PCIe" in advice.reason

    def test_placement_validates_inputs(self):
        with pytest.raises(ValueError):
            placement_advice(-1)
        with pytest.raises(ValueError):
            placement_advice(1, available_gpus=0)
