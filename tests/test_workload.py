"""Tests for the workload layer: specs, schedules, statistics, the driver.

The schedule is the contract: everything random (arrival gaps, class picks)
derives from the spec's seed before any request is submitted, so the same
spec replays the same traffic no matter how the event loop interleaves --
and the statistics folding (percentiles, run-table rows, repetition-aware
summaries) is plain inspectable math, tested against NumPy directly.
"""

import json
import random

import numpy as np
import pytest

from repro.api import Q, Session
from repro.ssb.queries import QUERIES, QUERY_ORDER
from repro.workload import QueryClass, WorkloadDriver, WorkloadSpec
from repro.workload.driver import class_sequence, poisson_arrivals
from repro.workload.report import (
    ALL_CLASSES,
    RUN_TABLE_COLUMNS,
    ClassStats,
    percentile,
    render_run_table,
    summarize_repetitions,
)


def small_mix(**kwargs) -> WorkloadSpec:
    """A three-class mix small enough for sub-second driver runs."""
    kwargs.setdefault("duration_s", 0.3)
    return WorkloadSpec.ssb_mix(
        percentages={"q1.1": 50.0, "q2.1": 30.0},
        extra=(
            QueryClass(
                "adhoc",
                Q("lineorder")
                .filter("lo_discount", "between", (4, 6))
                .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
                .group_by("d_year")
                .agg("count"),
                20.0,
            ),
        ),
        **kwargs,
    )


class TestSpecValidation:
    def test_ssb_mix_defaults_to_all_queries(self):
        spec = WorkloadSpec.ssb_mix()
        assert [qclass.name for qclass in spec.classes] == list(QUERY_ORDER)
        assert sum(spec.fractions.values()) == pytest.approx(1.0)

    def test_ssb_mix_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown SSB query"):
            WorkloadSpec.ssb_mix(percentages={"q9.9": 100.0})

    def test_duplicate_class_names_rejected(self):
        q = QUERIES["q1.1"]
        with pytest.raises(ValueError, match="duplicate"):
            WorkloadSpec(classes=(QueryClass("a", q), QueryClass("a", q)))

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"arrival": "burst"}, "arrival"),
            ({"target_rps": 0.0}, "target_rps"),
            ({"arrival": "closed", "users": 0}, "users"),
            ({"duration_s": 0.0}, "duration_s"),
            ({"repetitions": 0}, "repetitions"),
            ({"timeout_s": 0.0}, "timeout_s"),
            ({"think_time_s": -1.0}, "think_time_s"),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            WorkloadSpec(classes=(QueryClass("a", QUERIES["q1.1"]),), **kwargs)

    def test_query_class_validation(self):
        with pytest.raises(ValueError, match="weight"):
            QueryClass("a", QUERIES["q1.1"], weight=0.0)
        with pytest.raises(ValueError, match="name"):
            QueryClass("", QUERIES["q1.1"])

    def test_fractions_and_by_name(self):
        spec = small_mix()
        assert spec.fractions["q1.1"] == pytest.approx(0.5)
        assert spec.by_name("adhoc").weight == 20.0
        with pytest.raises(KeyError):
            spec.by_name("nope")


class TestSchedules:
    def test_poisson_arrivals_deterministic_and_bounded(self):
        a = poisson_arrivals(200.0, 5.0, random.Random(42))
        b = poisson_arrivals(200.0, 5.0, random.Random(42))
        assert a == b
        assert a == sorted(a)
        assert all(0 < offset < 5.0 for offset in a)

    def test_poisson_arrival_count_tracks_target_rate(self):
        counts = [len(poisson_arrivals(200.0, 5.0, random.Random(seed))) for seed in range(20)]
        mean = sum(counts) / len(counts)
        # Poisson(1000): the 20-sample mean lands within a few sigma.
        assert 900 < mean < 1100

    def test_class_sequence_deterministic_and_weighted(self):
        spec = small_mix()
        a = class_sequence(spec, 2000, random.Random(3))
        b = class_sequence(spec, 2000, random.Random(3))
        assert [qclass.name for qclass in a] == [qclass.name for qclass in b]
        share = sum(1 for qclass in a if qclass.name == "q1.1") / len(a)
        assert 0.4 < share < 0.6  # the 50% class gets about half the picks


class TestPercentiles:
    def test_matches_numpy_linear_interpolation(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(10.0, size=137).tolist()
        for q in (0, 25, 50, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(float(np.percentile(values, q)))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 101)

    def test_class_stats_folds_outcomes(self):
        outcomes = [("ok", 10.0), ("ok", 20.0), ("rejected", 0.1), ("timeout", 50.0), ("error", 1.0)]
        stats = ClassStats.from_outcomes("probe", outcomes, duration_s=2.0)
        assert stats.requests == 5 and stats.completed == 2
        assert stats.rejected == 1 and stats.timed_out == 1 and stats.failed == 1
        assert stats.throughput_rps == pytest.approx(1.0)
        assert stats.mean_ms == pytest.approx(15.0)
        assert stats.p50_ms == pytest.approx(15.0)  # percentiles over completed only
        assert stats.max_ms == pytest.approx(20.0)
        assert stats.failure_rate == pytest.approx(0.4)
        assert stats.rejection_rate == pytest.approx(0.2)

    def test_class_stats_empty_completion_has_no_percentiles(self):
        stats = ClassStats.from_outcomes("probe", [("rejected", 0.1)], duration_s=1.0)
        assert stats.p99_ms is None and stats.mean_ms is None
        assert stats.rejection_rate == 1.0

    def test_class_stats_rejects_unknown_status(self):
        with pytest.raises(ValueError, match="unknown outcome"):
            ClassStats.from_outcomes("probe", [("exploded", 1.0)], duration_s=1.0)


class TestDriver:
    @pytest.fixture(scope="class")
    def session(self, tiny_ssb):
        with Session(tiny_ssb, cache=False) as session:
            yield session

    def test_poisson_run_below_saturation_completes_everything(self, session):
        spec = small_mix(target_rps=40.0, seed=11)
        report = WorkloadDriver(session, spec).run(run="smoke")
        aggregate = report.aggregate
        assert aggregate.requests > 0
        assert aggregate.completed == aggregate.requests
        assert aggregate.failed == 0 and aggregate.rejected == 0
        assert aggregate.p99_ms is not None and aggregate.p99_ms > 0
        assert not report.errors

    def test_schedule_is_deterministic_across_runs(self, session):
        spec = small_mix(target_rps=60.0, seed=5)
        first = WorkloadDriver(session, spec).run()
        second = WorkloadDriver(session, spec).run()
        per_class = lambda report: {  # noqa: E731 - tiny local projection
            tag: stats.requests for tag, stats in report.repetitions[0].per_class.items()
        }
        assert per_class(first) == per_class(second)

    def test_closed_loop_self_limits(self, session):
        spec = small_mix(arrival="closed", users=3, seed=2)
        report = WorkloadDriver(session, spec).run(run="closed")
        aggregate = report.aggregate
        assert aggregate.completed == aggregate.requests > 0
        assert report.repetitions[0].service["peak_inflight"] <= 3

    def test_overloaded_run_rejects_cleanly(self, session):
        spec = small_mix(target_rps=500.0, duration_s=0.4, seed=9)
        report = WorkloadDriver(
            session,
            spec,
            service_config={"max_inflight": 1, "max_queue_depth": 1},
        ).run(run="overload")
        aggregate = report.aggregate
        assert aggregate.rejected > 0  # admission control did its job
        assert aggregate.failed == 0 and not report.errors  # and nothing broke
        assert aggregate.completed > 0

    def test_repetitions_differ_but_reproduce(self, session):
        spec = small_mix(target_rps=50.0, repetitions=2, seed=4)
        report = WorkloadDriver(session, spec).run()
        assert len(report.repetitions) == 2
        counts = [result.aggregate.requests for result in report.repetitions]
        assert counts[0] != counts[1]  # rep r seeds from seed + r

    def test_service_config_cannot_override_spec(self, session):
        with pytest.raises(ValueError, match="engine"):
            WorkloadDriver(session, small_mix(), service_config={"engine": "gpu"})

    def test_warmup_runs_every_class_once(self, session):
        spec = small_mix(target_rps=30.0, seed=8)
        report = WorkloadDriver(session, spec).run()
        service = report.repetitions[0].service
        assert service["warmup_requests"] == len(spec.classes)
        # Warmup traffic is not measured: submitted covers it, the rows don't.
        assert service["submitted"] == report.aggregate.requests + service["warmup_requests"]


class TestArtifacts:
    @pytest.fixture(scope="class")
    def report(self, tiny_ssb):
        with Session(tiny_ssb, cache=False) as session:
            spec = small_mix(target_rps=40.0, repetitions=2, seed=13)
            yield WorkloadDriver(session, spec).run(run="artifact")

    def test_run_table_rows_shape(self, report):
        rows = report.rows()
        # One aggregate row plus one per active class, per repetition.
        assert all(set(row) == set(RUN_TABLE_COLUMNS) for row in rows)
        for rep in (0, 1):
            rep_rows = [row for row in rows if row["repetition"] == rep]
            assert rep_rows[0]["class"] == ALL_CLASSES
            assert rep_rows[0]["requests"] == sum(row["requests"] for row in rep_rows[1:])

    def test_run_table_csv_round_trips(self, report, tmp_path):
        path = tmp_path / "run_table.csv"
        report.write_run_table(str(path))
        text = path.read_text(encoding="utf-8")
        assert text == render_run_table(report.rows())
        header, *lines = text.strip().splitlines()
        assert header == ",".join(RUN_TABLE_COLUMNS)
        assert len(lines) == len(report.rows())

    def test_summary_is_json_serializable_and_repetition_aware(self, report, tmp_path):
        summary = report.summary()
        text = json.dumps(summary)  # must not hit a non-JSON type anywhere
        assert "artifact" in text
        entry = summary["classes"][ALL_CLASSES]
        assert entry["repetitions"] == 2
        assert entry["p99_ms"]["min"] <= entry["p99_ms"]["mean"] <= entry["p99_ms"]["max"]
        path = tmp_path / "summary.json"
        report.write_summary(str(path))
        assert json.loads(path.read_text(encoding="utf-8")) == json.loads(text)

    def test_summarize_never_pools_percentiles(self, report):
        summary = summarize_repetitions(report.repetitions)
        reps = report.repetitions
        p99s = [result.aggregate.p99_ms for result in reps]
        assert summary[ALL_CLASSES]["p99_ms"]["mean"] == pytest.approx(sum(p99s) / len(p99s))

    def test_str_renders_summary_table(self, report):
        text = str(report)
        assert "workload artifact" in text
        assert ALL_CLASSES in text and "p99ms" in text
