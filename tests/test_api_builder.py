"""Tests for the fluent QueryBuilder: canonical re-expression and validation."""

import pytest

from repro.api import Q, QueryBuilder, QueryValidationError
from repro.ssb.queries import QUERIES, FilterSpec, SSBQuery

_Q3_YEARS = [FilterSpec("d_year", "between", (1992, 1997))]
_UK = ("UNITED KI1", "UNITED KI5")


def _flight1(name, date_filters, discount, quantity):
    builder = (
        Q("lineorder")
        .named(name, flight=1,
               description="revenue = SUM(lo_extendedprice * lo_discount) under "
                           "date/discount/quantity filters")
        .filter("lo_discount", "between", discount)
        .filter(quantity.column, quantity.op, quantity.value)
        .join("date", on=("lo_orderdate", "d_datekey"), filters=date_filters)
        .agg("sum", "lo_extendedprice", "lo_discount", combine="mul")
    )
    return builder


#: Every canonical SSB query, re-expressed through the fluent builder.
BUILT: dict[str, QueryBuilder] = {
    "q1.1": _flight1("q1.1", [FilterSpec("d_year", "eq", 1993)], (1, 3),
                     FilterSpec("lo_quantity", "lt", 25)),
    "q1.2": _flight1("q1.2", [FilterSpec("d_yearmonthnum", "eq", 199401)], (4, 6),
                     FilterSpec("lo_quantity", "between", (26, 35))),
    "q1.3": _flight1("q1.3", [FilterSpec("d_weeknuminyear", "eq", 6), FilterSpec("d_year", "eq", 1994)],
                     (5, 7), FilterSpec("lo_quantity", "between", (26, 35))),
    "q2.1": (
        Q("lineorder")
        .named("q2.1", flight=2,
               description="SUM(lo_revenue) by year and brand for one category in one region")
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_region", "eq", "AMERICA", True)])
        .join("part", on=("lo_partkey", "p_partkey"),
              filters=[("p_category", "eq", "MFGR#12", True)], payload="p_brand1")
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year", "p_brand1")
        .agg("sum", "lo_revenue")
    ),
    "q2.2": (
        Q("lineorder")
        .named("q2.2", flight=2,
               description="SUM(lo_revenue) by year and brand for a brand range in ASIA")
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_region", "eq", "ASIA", True)])
        .join("part", on=("lo_partkey", "p_partkey"),
              filters=[("p_brand1", "between", ("MFGR#2221", "MFGR#2228"), True)],
              payload="p_brand1")
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year", "p_brand1")
        .agg("sum", "lo_revenue")
    ),
    "q2.3": (
        Q("lineorder")
        .named("q2.3", flight=2,
               description="SUM(lo_revenue) by year and brand for a single brand in EUROPE")
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_region", "eq", "EUROPE", True)])
        .join("part", on=("lo_partkey", "p_partkey"),
              filters=[("p_brand1", "eq", "MFGR#2221", True)], payload="p_brand1")
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year", "p_brand1")
        .agg("sum", "lo_revenue")
    ),
    "q3.1": (
        Q("lineorder")
        .named("q3.1", flight=3,
               description="revenue by customer nation, supplier nation, and year within ASIA")
        .join("customer", on=("lo_custkey", "c_custkey"),
              filters=[("c_region", "eq", "ASIA", True)], payload="c_nation")
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_region", "eq", "ASIA", True)], payload="s_nation")
        .join("date", on=("lo_orderdate", "d_datekey"), filters=_Q3_YEARS, payload="d_year")
        .group_by("c_nation", "s_nation", "d_year")
        .agg("sum", "lo_revenue")
    ),
    "q3.2": (
        Q("lineorder")
        .named("q3.2", flight=3,
               description="revenue by city pair and year within the United States")
        .join("customer", on=("lo_custkey", "c_custkey"),
              filters=[("c_nation", "eq", "UNITED STATES", True)], payload="c_city")
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_nation", "eq", "UNITED STATES", True)], payload="s_city")
        .join("date", on=("lo_orderdate", "d_datekey"), filters=_Q3_YEARS, payload="d_year")
        .group_by("c_city", "s_city", "d_year")
        .agg("sum", "lo_revenue")
    ),
    "q3.3": (
        Q("lineorder")
        .named("q3.3", flight=3, description="revenue between two UK cities by year")
        .join("customer", on=("lo_custkey", "c_custkey"),
              filters=[("c_city", "in", _UK, True)], payload="c_city")
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_city", "in", _UK, True)], payload="s_city")
        .join("date", on=("lo_orderdate", "d_datekey"), filters=_Q3_YEARS, payload="d_year")
        .group_by("c_city", "s_city", "d_year")
        .agg("sum", "lo_revenue")
    ),
    "q3.4": (
        Q("lineorder")
        .named("q3.4", flight=3, description="revenue between two UK cities in one month")
        .join("customer", on=("lo_custkey", "c_custkey"),
              filters=[("c_city", "in", _UK, True)], payload="c_city")
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_city", "in", _UK, True)], payload="s_city")
        .join("date", on=("lo_orderdate", "d_datekey"),
              filters=[("d_yearmonth", "eq", "Dec1997", True)], payload="d_year")
        .group_by("c_city", "s_city", "d_year")
        .agg("sum", "lo_revenue")
    ),
    "q4.1": (
        Q("lineorder")
        .named("q4.1", flight=4,
               description="profit by year and customer nation in the Americas")
        .join("customer", on=("lo_custkey", "c_custkey"),
              filters=[("c_region", "eq", "AMERICA", True)], payload="c_nation")
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_region", "eq", "AMERICA", True)])
        .join("part", on=("lo_partkey", "p_partkey"),
              filters=[("p_mfgr", "in", ("MFGR#1", "MFGR#2"), True)])
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year", "c_nation")
        .agg("sum", "lo_revenue", "lo_supplycost", combine="sub")
    ),
    "q4.2": (
        Q("lineorder")
        .named("q4.2", flight=4,
               description="profit by year, supplier nation, and category for 1997-1998")
        .join("customer", on=("lo_custkey", "c_custkey"),
              filters=[("c_region", "eq", "AMERICA", True)])
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_region", "eq", "AMERICA", True)], payload="s_nation")
        .join("part", on=("lo_partkey", "p_partkey"),
              filters=[("p_mfgr", "in", ("MFGR#1", "MFGR#2"), True)], payload="p_category")
        .join("date", on=("lo_orderdate", "d_datekey"),
              filters=[("d_year", "in", (1997, 1998))], payload="d_year")
        .group_by("d_year", "s_nation", "p_category")
        .agg("sum", "lo_revenue", "lo_supplycost", combine="sub")
    ),
    "q4.3": (
        Q("lineorder")
        .named("q4.3", flight=4,
               description="profit by year, supplier city, and brand for one category")
        .join("customer", on=("lo_custkey", "c_custkey"),
              filters=[("c_region", "eq", "AMERICA", True)])
        .join("supplier", on=("lo_suppkey", "s_suppkey"),
              filters=[("s_nation", "eq", "UNITED STATES", True)], payload="s_city")
        .join("part", on=("lo_partkey", "p_partkey"),
              filters=[("p_category", "eq", "MFGR#14", True)], payload="p_brand1")
        .join("date", on=("lo_orderdate", "d_datekey"),
              filters=[("d_year", "in", (1997, 1998))], payload="d_year")
        .group_by("d_year", "s_city", "p_brand1")
        .agg("sum", "lo_revenue", "lo_supplycost", combine="sub")
    ),
}


class TestCanonicalReExpression:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_builder_reproduces_canonical_spec(self, name):
        assert name in BUILT, f"missing builder re-expression for {name}"
        assert BUILT[name].build() == QUERIES[name]

    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_builder_reproduces_canonical_spec_with_schema_validation(self, name, tiny_ssb):
        assert BUILT[name].build(tiny_ssb) == QUERIES[name]


class TestBuilderMechanics:
    def test_builders_are_immutable(self):
        base = Q("lineorder").agg("count")
        with_filter = base.filter("lo_quantity", "lt", 25)
        assert base.build().fact_filters == ()
        assert len(with_filter.build().fact_filters) == 1

    def test_shared_prefix_produces_independent_queries(self):
        prefix = Q("lineorder").join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        a = prefix.group_by("d_year").agg("count").build()
        b = prefix.agg("sum", "lo_revenue").build()
        assert a.group_by == ("d_year",)
        assert b.group_by == ()

    def test_fact_field_defaults_to_lineorder(self):
        assert Q().agg("count").build().fact == "lineorder"

    def test_in_filter_accepts_a_generator(self, tiny_ssb):
        """Iterator operands are materialized up front, not consumed by validation."""
        from repro.engine.plan import execute_query

        from_list = Q().filter("lo_quantity", "in", [1, 2, 3, 4, 5]).agg("count")
        from_gen = Q().filter("lo_quantity", "in", iter([1, 2, 3, 4, 5])).agg("count")
        assert from_gen.build() == from_list.build()
        expected, _ = execute_query(tiny_ssb, from_list.build(tiny_ssb))
        value, _ = execute_query(tiny_ssb, from_gen.build(tiny_ssb))
        assert value == expected > 0

    def test_auto_encodes_string_predicates_against_schema(self, tiny_ssb):
        query = (
            Q("lineorder")
            .join("supplier", on=("lo_suppkey", "s_suppkey"),
                  filters=[("s_region", "eq", "ASIA")])
            .agg("count")
            .build(tiny_ssb)
        )
        assert query.joins[0].filters[0].encoded is True


class TestValidationErrors:
    def test_unknown_filter_op(self):
        with pytest.raises(QueryValidationError, match="unknown filter operator"):
            Q().filter("lo_quantity", "like", 1)

    def test_missing_comparison_value(self):
        with pytest.raises(TypeError):
            Q().filter("lo_quantity", "eq")
        with pytest.raises(QueryValidationError, match="comparison value"):
            Q().filter("lo_quantity", "eq", None)

    def test_between_rejects_a_set(self):
        """Sets iterate in hash order, silently swapping (low, high)."""
        with pytest.raises(QueryValidationError, match="ordered"):
            Q().filter("lo_quantity", "between", {10, 3})

    def test_numeric_constant_on_encoded_column_rejected(self, tiny_ssb):
        """Comparing raw dictionary codes is almost never what the user meant."""
        builder = (
            Q()
            .join("part", on=("lo_partkey", "p_partkey"), filters=[("p_mfgr", "eq", 1)])
            .agg("count")
        )
        with pytest.raises(QueryValidationError, match="dictionary encoded"):
            builder.build(tiny_ssb)

    def test_scalar_op_rejects_sequence_value(self):
        with pytest.raises(QueryValidationError, match="scalar comparison value"):
            Q().filter("lo_quantity", "eq", (1, 2))

    def test_between_needs_a_pair(self):
        with pytest.raises(QueryValidationError, match="between"):
            Q().filter("lo_discount", "between", 3)

    def test_duplicate_join(self):
        builder = Q().join("date", on=("lo_orderdate", "d_datekey"))
        with pytest.raises(QueryValidationError, match="duplicate join"):
            builder.join("date", on=("lo_orderdate", "d_datekey"))

    def test_role_playing_dimension_allowed(self):
        """The same dimension table may be joined twice via different fact keys."""
        query = (
            Q("events")
            .join("dim", on=("order_key", "k"), payload="delta")
            .join("dim", on=("ship_key", "k"))
            .agg("count")
            .build()
        )
        assert [j.fact_key for j in query.joins] == ["order_key", "ship_key"]

    def test_mixed_type_encoded_in_filter_rejected_at_build(self, tiny_ssb):
        """Non-string constants on an encoded column fail at build, not deep in expr.py."""
        builder = (
            Q()
            .join("supplier", on=("lo_suppkey", "s_suppkey"),
                  filters=[("s_region", "in", ("ASIA", 2))])
            .agg("count")
        )
        with pytest.raises(QueryValidationError, match="dictionary"):
            builder.build(tiny_ssb)

    def test_duplicate_payload_across_joins(self):
        builder = Q().join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        with pytest.raises(QueryValidationError, match="payload"):
            builder.join("customer", on=("lo_custkey", "c_custkey"), payload="d_year")

    def test_bad_join_on_shape(self):
        with pytest.raises(QueryValidationError, match="fact_key, dimension_key"):
            Q().join("date", on=("lo_orderdate",))

    def test_unknown_aggregate_op(self):
        with pytest.raises(QueryValidationError, match="unknown aggregate op"):
            Q().agg("median", "lo_revenue")

    def test_count_takes_no_columns(self):
        with pytest.raises(QueryValidationError, match="count"):
            Q().agg("count", "lo_revenue")

    def test_two_columns_need_combine(self):
        with pytest.raises(QueryValidationError, match="combine"):
            Q().agg("sum", "lo_revenue", "lo_supplycost")

    def test_build_requires_aggregate(self):
        with pytest.raises(QueryValidationError, match="no aggregate"):
            Q().filter("lo_quantity", "lt", 25).build()

    def test_group_by_must_be_a_join_payload(self):
        builder = (
            Q().join("date", on=("lo_orderdate", "d_datekey")).group_by("d_year").agg("count")
        )
        with pytest.raises(QueryValidationError, match="payload"):
            builder.build()

    def test_duplicate_group_by(self):
        with pytest.raises(QueryValidationError, match="duplicate group-by"):
            Q().group_by("d_year").group_by("d_year")

    def test_unknown_fact_table(self, tiny_ssb):
        with pytest.raises(QueryValidationError, match="unknown fact table"):
            Q("orders").agg("count").build(tiny_ssb)

    def test_unknown_fact_column(self, tiny_ssb):
        with pytest.raises(QueryValidationError, match="lo_color"):
            Q().filter("lo_color", "eq", 1).agg("count").build(tiny_ssb)

    def test_unknown_dimension_table(self, tiny_ssb):
        with pytest.raises(QueryValidationError, match="unknown dimension table"):
            Q().join("warehouse", on=("lo_suppkey", "w_key")).agg("count").build(tiny_ssb)

    def test_unknown_dimension_column(self, tiny_ssb):
        builder = Q().join("date", on=("lo_orderdate", "d_nope")).agg("count")
        with pytest.raises(QueryValidationError, match="d_nope"):
            builder.build(tiny_ssb)

    def test_unknown_payload_column(self, tiny_ssb):
        builder = Q().join("date", on=("lo_orderdate", "d_datekey"), payload="d_missing").agg("count")
        with pytest.raises(QueryValidationError, match="d_missing"):
            builder.build(tiny_ssb)

    def test_unknown_measure_column(self, tiny_ssb):
        with pytest.raises(QueryValidationError, match="lo_margin"):
            Q().agg("sum", "lo_margin").build(tiny_ssb)

    def test_encoded_measure_column_rejected(self, tiny_ssb):
        """Summing dictionary codes of a string column is meaningless."""
        with pytest.raises(QueryValidationError, match="dictionary-encoded"):
            Q("supplier").agg("sum", "s_region").build(tiny_ssb)

    def test_string_on_pair_rejected(self):
        """A 2-character string is a len-2 Sequence but not a key pair."""
        with pytest.raises(QueryValidationError, match="fact_key, dimension_key"):
            Q().join("date", on="ab")

    def test_encoded_flag_without_dictionary(self, tiny_ssb):
        builder = Q().filter("lo_quantity", "eq", 5, encoded=True).agg("count")
        with pytest.raises(QueryValidationError, match="no dictionary"):
            builder.build(tiny_ssb)

    def test_string_value_missing_from_dictionary(self, tiny_ssb):
        builder = (
            Q()
            .join("supplier", on=("lo_suppkey", "s_suppkey"),
                  filters=[("s_region", "eq", "ATLANTIS")])
            .agg("count")
        )
        with pytest.raises(QueryValidationError, match="ATLANTIS"):
            builder.build(tiny_ssb)

    def test_built_specs_are_plain_ssb_queries(self):
        built = BUILT["q2.1"].build()
        assert isinstance(built, SSBQuery)
