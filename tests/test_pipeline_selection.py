"""The late-materialization selection-vector data plane.

The physical pipeline no longer carries full-fact-width boolean masks:
operators compact survivors into a selection vector once and work at
selection-vector width from then on, payload codes ride along in narrow
dtypes, and the grouped aggregate factorizes packed-radix keys.  None of
that may show: these tests hold answers and profiles byte-identical to the
full-width mask reference executor on all 13 SSB queries (plus OR-trees),
and pin down the new helpers individually.
"""

import numpy as np
import pytest

from repro.api import Q, Session, col
from repro.engine.expr import evaluate_pred, evaluate_pred_at
from repro.engine.physical import BuildLookup, lower_query
from repro.engine.plan import (
    execute_query,
    execute_query_monolithic,
    factorize_group_keys,
    grouped_aggregate,
    grouped_aggregate_values,
    narrowest_signed_dtype,
    scalar_aggregate,
    scalar_aggregate_values,
)
from repro.ssb.queries import QUERIES, FilterSpec, JoinSpec, SSBQuery

# ----------------------------------------------------------------------
# Differential: selection vectors vs the full-width mask reference
# ----------------------------------------------------------------------


class TestSelectionVectorParity:
    @pytest.mark.parametrize("name", sorted(QUERIES))
    def test_all_13_queries_answers_and_profiles(self, tiny_ssb, name):
        value_mono, profile_mono = execute_query_monolithic(tiny_ssb, QUERIES[name])
        value_sel, profile_sel = execute_query(tiny_ssb, QUERIES[name])
        assert value_sel == value_mono
        assert profile_sel == profile_mono

    @pytest.mark.parametrize(
        "pred",
        [
            col("lo_discount").between(1, 3) | (col("lo_quantity") > 45),
            (col("lo_discount") == 1) | (col("lo_discount") == 2) | (col("lo_quantity") < 5),
            ~(col("lo_quantity") < 25) & (col("lo_discount") >= 2),
            (col("lo_discount") <= 2) & ((col("lo_quantity") < 10) | (col("lo_quantity") > 40)),
        ],
        ids=["or-band", "triple-or", "not-and", "nested-or"],
    )
    def test_or_tree_predicates(self, tiny_ssb, pred):
        query = (
            Q("lineorder")
            .where(pred)
            .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
            .group_by("d_year")
            .agg("sum", "lo_extendedprice", "lo_discount", combine="mul")
            .build(tiny_ssb)
        )
        value_mono, profile_mono = execute_query_monolithic(tiny_ssb, query)
        value_sel, profile_sel = execute_query(tiny_ssb, query)
        assert value_sel == value_mono
        assert profile_sel == profile_mono

    @pytest.mark.parametrize("op", ["sum", "count", "min", "max", "avg"])
    def test_every_aggregate_op(self, tiny_ssb, op):
        builder = (
            Q("lineorder")
            .where(col("lo_quantity") < 20)
            .join("supplier", on=("lo_suppkey", "s_suppkey"), payload="s_region")
            .group_by("s_region")
        )
        builder = builder.agg(op) if op == "count" else builder.agg(op, "lo_revenue")
        query = builder.build(tiny_ssb)
        value_mono, profile_mono = execute_query_monolithic(tiny_ssb, query)
        value_sel, profile_sel = execute_query(tiny_ssb, query)
        assert value_sel == value_mono
        assert profile_sel == profile_mono

    def test_empty_selection(self, tiny_ssb):
        query = (
            Q("lineorder")
            .where(col("lo_quantity") > 10_000)  # nothing survives
            .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
            .group_by("d_year")
            .agg("sum", "lo_revenue")
            .build(tiny_ssb)
        )
        value_mono, profile_mono = execute_query_monolithic(tiny_ssb, query)
        value_sel, profile_sel = execute_query(tiny_ssb, query)
        assert value_sel == value_mono == {}
        assert profile_sel == profile_mono


# ----------------------------------------------------------------------
# evaluate_pred_at: predicate evaluation at selection-vector width
# ----------------------------------------------------------------------


class TestEvaluatePredAt:
    @pytest.mark.parametrize(
        "spec",
        [
            FilterSpec("lo_quantity", "eq", 25),
            FilterSpec("lo_quantity", "ne", 25),
            FilterSpec("lo_quantity", "lt", 25),
            FilterSpec("lo_quantity", "le", 25),
            FilterSpec("lo_quantity", "gt", 25),
            FilterSpec("lo_quantity", "ge", 25),
            FilterSpec("lo_discount", "between", (2, 5)),
            FilterSpec("lo_discount", "in", (1, 4, 9)),
        ],
        ids=lambda spec: spec.op,
    )
    def test_leaf_ops_match_full_width(self, tiny_ssb, rng, spec):
        fact = tiny_ssb.table("lineorder")
        sel = np.flatnonzero(rng.random(fact.num_rows) < 0.3)
        full = evaluate_pred(fact, spec)
        at = evaluate_pred_at(fact, spec, sel)
        np.testing.assert_array_equal(at, full[sel])

    def test_trees_match_full_width(self, tiny_ssb, rng):
        fact = tiny_ssb.table("lineorder")
        pred = (col("lo_discount").between(1, 3) | ~(col("lo_quantity") < 30)) & (
            col("lo_orderdate") > 19920601
        )
        sel = np.flatnonzero(rng.random(fact.num_rows) < 0.1)
        full = evaluate_pred(fact, pred)
        at = evaluate_pred_at(fact, pred, sel)
        np.testing.assert_array_equal(at, full[sel])

    def test_empty_selection_vector(self, tiny_ssb):
        fact = tiny_ssb.table("lineorder")
        sel = np.array([], dtype=np.int64)
        at = evaluate_pred_at(fact, FilterSpec("lo_quantity", "lt", 25), sel)
        assert at.shape == (0,)

    def test_refined_selection_composes(self, tiny_ssb):
        fact = tiny_ssb.table("lineorder")
        first = FilterSpec("lo_discount", "between", (1, 3))
        second = FilterSpec("lo_quantity", "lt", 25)
        sel = np.flatnonzero(evaluate_pred(fact, first))
        refined = sel[evaluate_pred_at(fact, second, sel)]
        both = np.flatnonzero(evaluate_pred(fact, first) & evaluate_pred(fact, second))
        np.testing.assert_array_equal(refined, both)


# ----------------------------------------------------------------------
# Packed-radix group keys
# ----------------------------------------------------------------------


class TestFactorizeGroupKeys:
    def _reference(self, key_arrays):
        stacked = np.stack([a.astype(np.int64) for a in key_arrays], axis=1)
        return np.unique(stacked, axis=0, return_inverse=True)

    @pytest.mark.parametrize("num_columns", [1, 2, 3])
    def test_matches_np_unique(self, rng, num_columns):
        key_arrays = [rng.integers(0, 40, size=5000) for _ in range(num_columns)]
        unique, inverse = factorize_group_keys(key_arrays)
        ref_unique, ref_inverse = self._reference(key_arrays)
        np.testing.assert_array_equal(unique, ref_unique)
        np.testing.assert_array_equal(np.asarray(inverse).ravel(), np.asarray(ref_inverse).ravel())

    def test_negative_codes(self, rng):
        key_arrays = [rng.integers(-7, 7, size=2000), rng.integers(-100, 3, size=2000)]
        unique, inverse = factorize_group_keys(key_arrays)
        ref_unique, ref_inverse = self._reference(key_arrays)
        np.testing.assert_array_equal(unique, ref_unique)
        np.testing.assert_array_equal(np.asarray(inverse).ravel(), np.asarray(ref_inverse).ravel())

    def test_sparse_domain_falls_back_to_sorted_unique(self, rng):
        # Wide per-column ranges force the packed domain over the dense
        # bincount limit while still fitting int64.
        key_arrays = [rng.integers(0, 2**21, size=300), rng.integers(0, 2**21, size=300)]
        unique, inverse = factorize_group_keys(key_arrays)
        ref_unique, ref_inverse = self._reference(key_arrays)
        np.testing.assert_array_equal(unique, ref_unique)
        np.testing.assert_array_equal(np.asarray(inverse).ravel(), np.asarray(ref_inverse).ravel())

    def test_overflowing_domain_falls_back_to_axis_unique(self, rng):
        key_arrays = [
            rng.integers(0, 2**40, size=100),
            rng.integers(0, 2**40, size=100),
        ]
        unique, inverse = factorize_group_keys(key_arrays)
        ref_unique, ref_inverse = self._reference(key_arrays)
        np.testing.assert_array_equal(unique, ref_unique)
        np.testing.assert_array_equal(np.asarray(inverse).ravel(), np.asarray(ref_inverse).ravel())

    def test_single_group(self):
        key_arrays = [np.full(10, 3), np.full(10, -2)]
        unique, inverse = factorize_group_keys(key_arrays)
        np.testing.assert_array_equal(unique, [[3, -2]])
        np.testing.assert_array_equal(inverse, np.zeros(10, dtype=np.int64))

    def test_lexicographic_order_preserved(self, rng):
        """Result-dict iteration order must match the old axis=0 unique."""
        key_arrays = [rng.integers(0, 5, size=1000), rng.integers(0, 9, size=1000)]
        unique, _ = factorize_group_keys(key_arrays)
        as_tuples = [tuple(row) for row in unique]
        assert as_tuples == sorted(as_tuples)


# ----------------------------------------------------------------------
# Gathered-width aggregate helpers
# ----------------------------------------------------------------------


class TestAggregateValueHelpers:
    @pytest.mark.parametrize("op", ["sum", "count", "min", "max", "avg"])
    def test_scalar_parity(self, rng, op):
        measure = rng.random(500)
        selected = np.flatnonzero(rng.random(500) < 0.4)
        full = scalar_aggregate(op, measure, selected)
        values = None if op == "count" else measure[selected]
        gathered = scalar_aggregate_values(op, values, int(selected.size))
        assert gathered == full

    @pytest.mark.parametrize("op", ["sum", "count", "min", "max", "avg"])
    def test_scalar_empty_selection(self, op):
        empty = np.array([], dtype=np.int64)
        full = scalar_aggregate(op, np.arange(5, dtype=np.float64), empty)
        gathered = scalar_aggregate_values(op, None if op == "count" else np.array([]), 0)
        assert gathered == full

    @pytest.mark.parametrize("op", ["sum", "count", "min", "max", "avg"])
    def test_grouped_parity(self, rng, op):
        measure = rng.random(800)
        selected = np.flatnonzero(rng.random(800) < 0.5)
        inverse = rng.integers(0, 6, size=selected.size)
        full = grouped_aggregate(op, measure, selected, inverse, 6)
        values = None if op == "count" else measure[selected]
        gathered = grouped_aggregate_values(op, values, inverse, 6)
        np.testing.assert_array_equal(gathered, full)


# ----------------------------------------------------------------------
# Narrow payload dtypes
# ----------------------------------------------------------------------


class TestNarrowPayloads:
    def test_narrowest_signed_dtype(self):
        assert narrowest_signed_dtype(0, 100) == np.int8
        assert narrowest_signed_dtype(-1, 300) == np.int16
        assert narrowest_signed_dtype(0, 2**20) == np.int32
        assert narrowest_signed_dtype(0, 2**40) == np.int64
        with pytest.raises(OverflowError):
            narrowest_signed_dtype(0, 2**70)

    def test_year_payload_is_two_bytes(self, tiny_ssb):
        plan = lower_query(QUERIES["q2.1"])
        date_build = next(b for b in plan.builds if b.join.dimension == "date")
        artifact = date_build.build(tiny_ssb)
        assert artifact.lookup.dtype == np.int16  # years ~1992..1998
        assert artifact.lookup.itemsize < 8

    def test_payload_free_build_is_one_byte(self, tiny_ssb):
        join = lower_query(QUERIES["q1.1"]).logical.joins[0]
        assert join.payload is None
        artifact = BuildLookup(join).build(tiny_ssb)
        assert artifact.lookup.dtype == np.int8

    def test_probe_carries_narrow_codes(self, tiny_ssb):
        from repro.engine.physical import execute_physical

        plan = lower_query(QUERIES["q2.1"])
        value, profile = execute_physical(tiny_ssb, plan)
        # Decoded answers are plain ints regardless of carried dtype.
        assert all(isinstance(k, int) for key in value for k in key)
        value_mono, profile_mono = execute_query_monolithic(tiny_ssb, QUERIES["q2.1"])
        assert value == value_mono
        assert profile == profile_mono


# ----------------------------------------------------------------------
# Plan-time payload validation
# ----------------------------------------------------------------------


class TestPayloadValidationAtLowerTime:
    def _duplicate_payload_query(self):
        return SSBQuery(
            name="dup-payload",
            flight=0,
            fact_filters=(),
            joins=(
                JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
                JoinSpec("date", "lo_commitdate", "d_datekey", (), payload="d_year"),
            ),
            group_by=("d_year",),
            aggregate=QUERIES["q2.1"].aggregate,
        )

    def test_rejected_before_any_execution(self, tiny_ssb):
        """lower() raises; no operator ever touches the pipeline state."""
        with pytest.raises(ValueError, match="more than one join"):
            lower_query(self._duplicate_payload_query())

    def test_rejected_through_execute_query(self, tiny_ssb):
        with pytest.raises(ValueError, match="more than one join"):
            execute_query(tiny_ssb, self._duplicate_payload_query())

    def test_rejected_without_building_artifacts(self, tiny_ssb):
        session = Session(tiny_ssb)
        with pytest.raises(ValueError, match="more than one join"):
            session.run_many([self._duplicate_payload_query()], engine="cpu", share_builds=True)
        assert session.cache_info("builds").size == 0
