"""Tests for the widened aggregate operators (count/min/max/avg) end-to-end."""

import numpy as np
import pytest

from repro.api import Q, Session, available_engines
from repro.engine.plan import execute_query
from repro.ssb.queries import QUERIES, AggregateSpec
from dataclasses import replace


def _scalar_query(op, *columns, combine=None):
    builder = Q("lineorder").filter("lo_quantity", "lt", 25)
    return builder.agg(op, *columns, combine=combine).build()


def _grouped_query(op, *columns, combine=None):
    return (
        Q("lineorder")
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year")
        .agg(op, *columns, combine=combine)
        .build()
    )


class TestScalarAggregates:
    @pytest.fixture(scope="class")
    def reference(self, tiny_ssb):
        lo = tiny_ssb["lineorder"]
        mask = lo["lo_quantity"] < 25
        return lo["lo_revenue"][mask].astype(np.float64)

    def test_count(self, tiny_ssb, reference):
        value, profile = execute_query(tiny_ssb, _scalar_query("count"))
        assert value == float(reference.size)
        # count reads no measure columns.
        assert all(a.role != "measure" for a in profile.column_accesses)

    def test_sum(self, tiny_ssb, reference):
        value, _ = execute_query(tiny_ssb, _scalar_query("sum", "lo_revenue"))
        assert value == pytest.approx(float(reference.sum()))

    def test_min(self, tiny_ssb, reference):
        value, _ = execute_query(tiny_ssb, _scalar_query("min", "lo_revenue"))
        assert value == float(reference.min())

    def test_max(self, tiny_ssb, reference):
        value, _ = execute_query(tiny_ssb, _scalar_query("max", "lo_revenue"))
        assert value == float(reference.max())

    def test_avg(self, tiny_ssb, reference):
        value, _ = execute_query(tiny_ssb, _scalar_query("avg", "lo_revenue"))
        assert value == pytest.approx(float(reference.mean()))

    def test_avg_of_two_column_expression(self, tiny_ssb):
        lo = tiny_ssb["lineorder"]
        mask = lo["lo_quantity"] < 25
        expected = (
            lo["lo_revenue"][mask].astype(np.float64)
            - lo["lo_supplycost"][mask].astype(np.float64)
        ).mean()
        value, _ = execute_query(
            tiny_ssb, _scalar_query("avg", "lo_revenue", "lo_supplycost", combine="sub")
        )
        assert value == pytest.approx(float(expected))

    def test_empty_selection(self, tiny_ssb):
        def run(op, *columns):
            query = Q("lineorder").filter("lo_quantity", "lt", -1).agg(op, *columns).build()
            return execute_query(tiny_ssb, query)[0]

        assert run("count") == 0.0
        assert run("sum", "lo_revenue") == 0.0
        # SQL semantics: no rows -> NULL, not a fabricated 0.
        assert run("min", "lo_revenue") is None
        assert run("max", "lo_revenue") is None
        assert run("avg", "lo_revenue") is None


class TestGroupedAggregates:
    @pytest.fixture(scope="class")
    def by_year(self, tiny_ssb):
        lo, date = tiny_ssb["lineorder"], tiny_ssb["date"]
        year_of = dict(zip(date["d_datekey"].tolist(), date["d_year"].tolist()))
        groups: dict[tuple, list] = {}
        for orderdate, revenue in zip(lo["lo_orderdate"], lo["lo_revenue"]):
            groups.setdefault((int(year_of[int(orderdate)]),), []).append(float(revenue))
        return groups

    def test_grouped_count(self, tiny_ssb, by_year):
        value, _ = execute_query(tiny_ssb, _grouped_query("count"))
        assert value == {key: float(len(vals)) for key, vals in by_year.items()}

    def test_grouped_min_max(self, tiny_ssb, by_year):
        value, _ = execute_query(tiny_ssb, _grouped_query("min", "lo_revenue"))
        assert value == {key: min(vals) for key, vals in by_year.items()}
        value, _ = execute_query(tiny_ssb, _grouped_query("max", "lo_revenue"))
        assert value == {key: max(vals) for key, vals in by_year.items()}

    def test_grouped_avg(self, tiny_ssb, by_year):
        value, _ = execute_query(tiny_ssb, _grouped_query("avg", "lo_revenue"))
        expected = {key: sum(vals) / len(vals) for key, vals in by_year.items()}
        assert set(value) == set(expected)
        for key in expected:
            assert value[key] == pytest.approx(expected[key])

    @pytest.mark.parametrize("op,columns", [
        ("count", ()),
        ("min", ("lo_revenue",)),
        ("max", ("lo_revenue",)),
        ("avg", ("lo_revenue",)),
    ])
    def test_all_engines_agree_on_new_ops(self, tiny_ssb, op, columns):
        """The widened ops flow through every registered engine unchanged."""
        session = Session(tiny_ssb)
        comparison = session.compare(_grouped_query(op, *columns), engines=available_engines())
        assert comparison.consistent


class TestArbitraryStarSchemas:
    """The builder's 'any star schema' promise: non-SSB tables and value domains."""

    @pytest.fixture(scope="class")
    def custom_db(self):
        from repro.storage import Database, Table

        db = Database(name="custom")
        db.add_table(Table.from_arrays("events", {
            # -1 marks "no parent row", a common convention in user data.
            "e_key": np.array([-1, 0, 1, 2, 0]),
            "e_key2": np.array([2, 2, -1, 0, 1]),
            "e_value": np.array([10, 20, 30, 40, 50]),
        }))
        db.add_table(Table.from_arrays("dim", {
            "k": np.array([0, 1, 2]),
            # Negative payload values must survive the join (no sentinel clash).
            "delta": np.array([-5, 7, -5]),
        }))
        return db

    def test_negative_keys_do_not_wrap_and_negative_payloads_survive(self, custom_db):
        query = (
            Q("events")
            .join("dim", on=("e_key", "k"), payload="delta")
            .group_by("delta")
            .agg("sum", "e_value")
            .build(custom_db)
        )
        value, profile = execute_query(custom_db, query)
        # e_key=-1 must not wrap to the last dimension row; delta=-5 groups survive.
        assert value == {(-5,): 110.0, (7,): 30.0}
        assert profile.result_input_rows == 4

    def test_role_playing_dimension_executes_correctly(self, custom_db):
        """Joining the same dimension via two fact keys filters on both edges."""
        query = (
            Q("events")
            .join("dim", on=("e_key", "k"), payload="delta")
            .join("dim", on=("e_key2", "k"))
            .group_by("delta")
            .agg("sum", "e_value")
        )
        session = Session(custom_db)
        plain = session.run(query, engine="cpu")
        # Rows surviving both joins: (0,2,20), (2,0,40), (0,1,50) -> all delta -5.
        assert plain.value == {(-5,): 110.0}
        # optimize=True cannot reorder role-playing joins; it must not corrupt them.
        optimized = session.run(query, engine="cpu", optimize=True)
        assert optimized.value == plain.value

    def test_custom_schema_consistent_across_engines(self, custom_db):
        query = (
            Q("events")
            .join("dim", on=("e_key", "k"), payload="delta")
            .group_by("delta")
            .agg("count")
        )
        comparison = Session(custom_db).compare(query, engines=["cpu", "gpu", "coprocessor"])
        assert comparison.consistent
        assert next(iter(comparison.results.values())).value == {(-5,): 3.0, (7,): 1.0}


class TestAggregateValidationInPlan:
    def test_unknown_op_rejected(self, tiny_ssb):
        bad = replace(QUERIES["q1.1"], aggregate=AggregateSpec(columns=("lo_revenue",), op="median"))
        with pytest.raises(ValueError, match="unsupported aggregate op"):
            execute_query(tiny_ssb, bad)

    def test_missing_columns_rejected(self, tiny_ssb):
        bad = replace(QUERIES["q1.1"], aggregate=AggregateSpec(columns=(), op="sum"))
        with pytest.raises(ValueError, match="measure column"):
            execute_query(tiny_ssb, bad)

    def test_count_with_columns_rejected(self, tiny_ssb):
        """count must not charge a measure scan the reduction never performs."""
        bad = replace(QUERIES["q1.1"], aggregate=AggregateSpec(columns=("lo_revenue",), op="count"))
        with pytest.raises(ValueError, match="no measure columns"):
            execute_query(tiny_ssb, bad)

    def test_combine_arity_mismatch_rejected(self, tiny_ssb):
        """Hand-built specs with inconsistent combine/columns get a clear error."""
        one_with_combine = replace(
            QUERIES["q1.1"], aggregate=AggregateSpec(columns=("lo_revenue",), combine="mul")
        )
        with pytest.raises(ValueError, match="exactly two columns"):
            execute_query(tiny_ssb, one_with_combine)
        two_without_combine = replace(
            QUERIES["q1.1"], aggregate=AggregateSpec(columns=("lo_revenue", "lo_supplycost"))
        )
        with pytest.raises(ValueError, match="combinator"):
            execute_query(tiny_ssb, two_without_combine)

    def test_unknown_combine_rejected(self, tiny_ssb):
        bad = replace(
            QUERIES["q1.1"],
            aggregate=AggregateSpec(columns=("lo_revenue", "lo_supplycost"), combine="div"),
        )
        with pytest.raises(ValueError, match="combinator"):
            execute_query(tiny_ssb, bad)

    def test_group_by_without_payload_rejected(self, tiny_ssb):
        bad = replace(QUERIES["q1.1"], group_by=("d_year",))
        with pytest.raises(ValueError, match="payload"):
            execute_query(tiny_ssb, bad)

    def test_duplicate_payload_rejected_in_executor(self, tiny_ssb):
        """Hand-written specs (bypassing the builder) also hit a clear error."""
        from repro.ssb.queries import JoinSpec

        bad = replace(
            QUERIES["q2.1"],
            joins=(
                JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
                JoinSpec("date", "lo_orderdate", "d_datekey", (), payload="d_year"),
            ),
            group_by=("d_year",),
        )
        with pytest.raises(ValueError, match="more than one join"):
            execute_query(tiny_ssb, bad)
