"""Tests for profile scaling, the cost model, report formatting, and experiments."""

import pytest

from repro.analysis import cost_comparison, format_series, format_table, scale_profile
from repro.analysis import experiments as experiments_module
from repro.analysis.experiments import (
    run_figure3,
    run_figure9,
    run_figure10,
    run_figure12,
    run_figure13,
    run_figure14,
    run_figure16,
    run_sec33_tile_comparison,
    run_sec53_case_study,
    run_table2,
    run_table3,
)
from repro.engine.plan import execute_query
from repro.ssb.queries import QUERIES


class TestScaleProfile:
    def test_fact_side_scales_linearly(self, tiny_ssb):
        _, profile = execute_query(tiny_ssb, QUERIES["q2.1"])
        scaled = scale_profile(profile, base_scale_factor=0.01, target_scale_factor=20.0)
        assert scaled.fact_rows == pytest.approx(profile.fact_rows * 2000, rel=0.01)
        assert scaled.result_input_rows == pytest.approx(profile.result_input_rows * 2000, rel=0.01)
        # The original profile is untouched.
        assert profile.fact_rows == tiny_ssb["lineorder"].num_rows

    def test_dimension_side_uses_per_table_ratios(self, tiny_ssb):
        _, profile = execute_query(tiny_ssb, QUERIES["q2.1"])
        scaled = scale_profile(profile, 0.01, 20.0)
        by_dim = {stage.dimension: stage for stage in scaled.joins}
        assert by_dim["supplier"].dimension_rows == pytest.approx(40_000, rel=0.05)
        assert by_dim["date"].dimension_rows == pytest.approx(profile.joins[-1].dimension_rows, rel=0.01)
        assert by_dim["part"].hash_table_bytes == pytest.approx(8 * 1_000_000, rel=0.05)

    def test_rejects_bad_scale_factors(self, tiny_ssb):
        _, profile = execute_query(tiny_ssb, QUERIES["q1.1"])
        with pytest.raises(ValueError):
            scale_profile(profile, 0, 20)


class TestCostComparison:
    def test_paper_numbers(self):
        """Section 5.4: ~6x rent cost ratio, ~25x speedup -> ~4x cost effectiveness."""
        comparison = cost_comparison(performance_ratio=25.0)
        assert comparison.rent_cost_ratio == pytest.approx(6.07, rel=0.02)
        assert comparison.rent_cost_effectiveness == pytest.approx(25 / 6.07, rel=0.02)
        assert comparison.purchase_cost_ratio < 6.0

    def test_rejects_non_positive_ratio(self):
        with pytest.raises(ValueError):
            cost_comparison(0)

    def test_as_rows_shape(self):
        rows = cost_comparison(10.0).as_rows()
        assert [r["platform"] for r in rows] == ["CPU", "GPU", "GPU / CPU"]


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1.0, "b": "x"}, {"a": 2.5, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_series(self):
        text = format_series({"s1": {1: 10.0, 2: 20.0}, "s2": {1: 1.0}}, x_name="n")
        assert "s1" in text and "s2" in text and "nan" in text


class TestExperiments:
    """Shape assertions on every experiment, run at tiny execution sizes."""

    EXEC_N = 1 << 16

    def test_figure9_shape(self):
        result = run_figure9(exec_n=self.EXEC_N)
        series = result["series"]
        assert set(series) == {"items_per_thread=1", "items_per_thread=2", "items_per_thread=4"}
        best = series["items_per_thread=4"]
        # Four items per thread beats one item per thread at every block size.
        for block, value in best.items():
            assert value <= series["items_per_thread=1"][block]
        # Mid-sized blocks beat both extremes (the Figure 9 U-shape).
        assert best[256] <= best[32]
        assert best[256] <= best[1024]

    def test_sec33_crystal_vs_independent_threads(self):
        rows = run_sec33_tile_comparison(exec_n=self.EXEC_N)["rows"]
        independent, crystal = rows[0], rows[1]
        assert independent["simulated_ms"] > crystal["simulated_ms"] * 3

    def test_figure10_shape(self):
        result = run_figure10(exec_n=self.EXEC_N)
        for row in result["rows"]:
            assert row["cpu_ms"] >= row["cpu_opt_ms"]
            assert row["cpu_opt_ms"] > row["gpu_ms"]
            # The CPU-Opt over GPU ratio tracks the bandwidth ratio.
            assert row["cpu_opt_over_gpu"] == pytest.approx(result["bandwidth_ratio"], rel=0.35)

    def test_figure12_shape(self):
        series = run_figure12(exec_n=self.EXEC_N)["series"]
        # Runtime grows with selectivity for the bandwidth-bound variants.
        assert series["cpu_simd_pred"][1.0] > series["cpu_simd_pred"][0.0]
        assert series["gpu_pred"][1.0] > series["gpu_pred"][0.0]
        # Branching hurts most at intermediate selectivity.
        assert series["cpu_if"][0.5] > series["cpu_pred"][0.5]
        # GPU If and GPU Pred are indistinguishable.
        for selectivity in (0.0, 0.5, 1.0):
            assert series["gpu_if"][selectivity] == pytest.approx(series["gpu_pred"][selectivity], rel=0.01)
        # The GPU gain is near the bandwidth ratio.
        ratio = series["cpu_simd_pred"][0.5] / series["gpu_pred"][0.5]
        assert 10 <= ratio <= 22

    def test_figure13_shape(self):
        result = run_figure13(validate=True, exec_probe_rows=1 << 16)
        series = result["series"]
        sizes = sorted(series["cpu_scalar"])
        # Step behaviour: runtime never decreases as the hash table grows.
        for name in ("cpu_scalar", "gpu", "cpu_model", "gpu_model"):
            values = [series[name][s] for s in sizes]
            assert all(b >= a * 0.99 for a, b in zip(values, values[1:]))
        # SIMD never beats scalar; the GPU always wins.
        for size in sizes:
            assert series["cpu_simd"][size] >= series["cpu_scalar"][size] * 0.99
            assert series["gpu"][size] < series["cpu_scalar"][size]
        # The gain is below the bandwidth ratio for memory-resident tables.
        large = sizes[-1]
        assert series["cpu_scalar"][large] / series["gpu"][large] < 16.2
        assert all(entry["checksum_ok"] for entry in result["validation"])

    def test_figure14_shape(self):
        result = run_figure14(exec_n=1 << 16)
        shuffle = result["shuffle_series"]
        # CPU shuffle deteriorates past 8 bits; GPU stable stops at 7 bits.
        assert shuffle["cpu_stable"][11] > shuffle["cpu_stable"][8] * 1.2
        assert 8 not in shuffle["gpu_stable"]
        assert 8 in shuffle["gpu_unstable"]
        # Full sorts: the GPU wins by roughly the bandwidth ratio.
        cpu_sort, gpu_sort = result["full_sort_rows"]
        assert 10 <= cpu_sort["simulated_ms"] / gpu_sort["simulated_ms"] <= 25

    def test_figure3_shape(self):
        rows = run_figure3(scale_factor=0.02)["rows"]
        mean = rows[-1]
        assert mean["query"] == "mean"
        # The GPU coprocessor is slower than Hyper on average (Section 3.1).
        assert mean["gpu_coprocessor_ms"] > mean["hyper_ms"]

    def test_figure16_shape(self):
        rows = run_figure16(scale_factor=0.02)["rows"]
        mean = rows[-1]
        # The headline result: standalone GPU beats standalone CPU by more
        # than the 16.2x bandwidth ratio on average.
        assert mean["cpu_over_gpu"] > 16.2
        assert mean["omnisci_ms"] > mean["standalone_gpu_ms"] * 3
        assert mean["standalone_cpu_ms"] <= mean["hyper_ms"] * 1.05

    def test_table2_lists_bandwidths(self):
        rows = run_table2()["rows"]
        attributes = {row["attribute"] for row in rows}
        assert "read_bandwidth_gbps" in attributes and "bandwidth_ratio" in attributes

    def test_table3_cost_effectiveness(self):
        result = run_table3(performance_ratio=25.0)
        assert result["performance_ratio"] == 25.0
        effectiveness = result["rows"][-1]["rent_usd_per_hour"]
        assert 3.0 <= effectiveness <= 5.0

    def test_sec53_case_study(self):
        rows = run_sec53_case_study(scale_factor=0.02)["rows"]
        gpu_row = next(r for r in rows if r["device"] == "GPU")
        cpu_row = next(r for r in rows if r["device"] == "CPU")
        # The GPU tracks its model closely; the CPU misses its model by a lot
        # more (latency stalls), mirroring the paper's Section 5.3 finding.
        gpu_gap = gpu_row["simulated_ms"] / gpu_row["model_ms"]
        cpu_gap = cpu_row["simulated_ms"] / cpu_row["model_ms"]
        assert cpu_gap > gpu_gap
