"""Tests for the asyncio QueryService: identity, admission control, timeouts.

The headline property is differential: for every replayed class -- all 13
canonical SSB queries plus an ad-hoc builder query -- the service must
answer byte-identically to a direct ``Session.run``.  The service adds
scheduling (bounded queue, overload policies, timeouts, drain), never
execution semantics, and every scheduling path is exercised here with a
hang guard: nothing in this file may block forever on a broken pump.
"""

import asyncio
import dataclasses
import time

import pytest

from repro.api import Q, Session
from repro.engine.cache import CounterSnapshot
from repro.service import (
    OverloadError,
    QueryService,
    QueryTimeoutError,
    RequestTrace,
    ServiceClosedError,
    ServiceResult,
)
from repro.ssb.queries import QUERIES, QUERY_ORDER, FilterSpec

#: Everything awaited in this file goes through this guard: a service bug
#: must fail the test, not hang the suite.
GUARD_S = 20.0


def run(coro):
    async def guarded():
        return await asyncio.wait_for(coro, timeout=GUARD_S)

    return asyncio.run(guarded())


def adhoc_query():
    return (
        Q("lineorder")
        .filter("lo_quantity", "lt", 25)
        .join("date", on=("lo_orderdate", "d_datekey"), payload="d_year")
        .group_by("d_year")
        .agg("count")
    )


class SlowSession(Session):
    """A session whose every run holds its worker for ``delay_s`` seconds.

    The real queries answer in a millisecond, far too fast to observe a
    full queue deterministically; the sleep pins workers so the admission
    paths (reject, shed, queued/running timeout) trigger on command.
    """

    def __init__(self, db, delay_s: float, **kwargs) -> None:
        super().__init__(db, **kwargs)
        self.delay_s = delay_s

    def run(self, query, engine="cpu", **kwargs):
        time.sleep(self.delay_s)
        return super().run(query, engine=engine, **kwargs)


@pytest.fixture(scope="module")
def session(tiny_ssb):
    with Session(tiny_ssb) as session:
        yield session


class TestDifferential:
    def test_every_class_matches_direct_session_run(self, session):
        """Acceptance: service answers byte-identical to Session.run."""
        classes = [(name, QUERIES[name]) for name in QUERY_ORDER]
        classes.append(("adhoc", adhoc_query()))

        async def through_service():
            async with QueryService(session, max_inflight=2) as service:
                tasks = {
                    name: asyncio.create_task(service.submit(query, class_tag=name))
                    for name, query in classes
                }
                return {name: await task for name, task in tasks.items()}

        served = run(through_service())
        for name, query in classes:
            direct = session.run(query, engine="cpu")
            answer = served[name].result
            assert answer.value == direct.value, name
            assert answer.simulated_ms == direct.simulated_ms, name
            assert answer.records == direct.records, name

    def test_engine_override_per_submit(self, session):
        async def go():
            async with QueryService(session, engine="cpu") as service:
                return await service.submit(QUERIES["q2.1"], engine="gpu")

        submitted = run(go())
        assert submitted.result.engine == "standalone-gpu"
        assert submitted.trace.engine == "gpu"

    def test_bad_engine_fails_on_submit_not_in_worker(self, session):
        async def go():
            async with QueryService(session) as service:
                with pytest.raises(KeyError, match="unknown engine"):
                    await service.submit(QUERIES["q1.1"], engine="gpx")
                return service.stats

        stats = run(go())
        assert stats.submitted == 0  # refused before it ever counted


class TestOverloadReject:
    def test_queue_full_rejects_with_stats(self, tiny_ssb):
        session = SlowSession(tiny_ssb, delay_s=0.2)

        async def go():
            async with QueryService(session, max_inflight=1, max_queue_depth=1) as service:
                first = asyncio.create_task(service.submit(QUERIES["q1.1"], class_tag="a"))
                await asyncio.sleep(0.05)  # a is running
                second = asyncio.create_task(service.submit(QUERIES["q2.1"], class_tag="b"))
                await asyncio.sleep(0)  # b is queued; the queue is full
                with pytest.raises(OverloadError) as excinfo:
                    await service.submit(QUERIES["q3.1"], class_tag="c")
                await asyncio.gather(first, second)
                return excinfo.value, service.stats

        error, stats = run(go())
        assert error.policy == "reject"
        assert error.shed is False
        assert error.class_tag == "c"
        assert error.queue_depth == 1 and error.max_queue_depth == 1
        assert error.inflight == 1 and error.max_inflight == 1
        assert stats.rejected == 1
        assert stats.completed == 2  # the admitted requests still answered
        assert stats.submitted == stats.settled

    def test_zero_depth_queue_rejects_while_busy(self, tiny_ssb):
        session = SlowSession(tiny_ssb, delay_s=0.2)

        async def go():
            async with QueryService(session, max_inflight=1, max_queue_depth=0) as service:
                first = asyncio.create_task(service.submit(QUERIES["q1.1"]))
                await asyncio.sleep(0.05)
                with pytest.raises(OverloadError):
                    await service.submit(QUERIES["q1.2"])
                await first

        run(go())


class TestOverloadShed:
    def test_sheds_oldest_of_most_represented_class(self, tiny_ssb):
        session = SlowSession(tiny_ssb, delay_s=0.25)

        async def go():
            async with QueryService(
                session, max_inflight=1, max_queue_depth=2, overload="shed"
            ) as service:
                running = asyncio.create_task(service.submit(QUERIES["q1.1"], class_tag="a"))
                await asyncio.sleep(0.05)
                burst1 = asyncio.create_task(service.submit(QUERIES["q2.1"], class_tag="burst"))
                await asyncio.sleep(0)
                burst2 = asyncio.create_task(service.submit(QUERIES["q2.2"], class_tag="burst"))
                await asyncio.sleep(0)  # queue: [burst1, burst2], full
                minority = asyncio.create_task(service.submit(QUERIES["q3.1"], class_tag="rare"))
                await asyncio.sleep(0)
                with pytest.raises(OverloadError) as excinfo:
                    await burst1  # oldest request of the heaviest class paid
                results = await asyncio.gather(running, burst2, minority)
                return excinfo.value, results, service.stats

        error, results, stats = run(go())
        assert error.shed is True
        assert error.policy == "shed"
        assert error.class_tag == "burst"
        assert all(isinstance(result, ServiceResult) for result in results)
        assert stats.shed == 1 and stats.completed == 3 and stats.rejected == 0
        assert stats.submitted == stats.settled

    def test_shed_with_empty_queue_falls_back_to_reject(self, tiny_ssb):
        session = SlowSession(tiny_ssb, delay_s=0.2)

        async def go():
            async with QueryService(
                session, max_inflight=1, max_queue_depth=0, overload="shed"
            ) as service:
                first = asyncio.create_task(service.submit(QUERIES["q1.1"]))
                await asyncio.sleep(0.05)
                with pytest.raises(OverloadError) as excinfo:
                    await service.submit(QUERIES["q1.2"])
                await first
                return excinfo.value

        error = run(go())
        assert error.shed is False  # no queued victim existed; newcomer refused


class TestTimeouts:
    def test_queued_request_times_out_and_never_executes(self, tiny_ssb):
        session = SlowSession(tiny_ssb, delay_s=0.3)

        async def go():
            async with QueryService(session, max_inflight=1) as service:
                running = asyncio.create_task(service.submit(QUERIES["q1.1"], timeout=None))
                await asyncio.sleep(0.05)
                with pytest.raises(QueryTimeoutError) as excinfo:
                    await service.submit(QUERIES["q2.1"], timeout=0.05)
                await running
                return excinfo.value, service.stats

        error, stats = run(go())
        assert error.where == "queued"
        assert error.timeout_s == 0.05
        assert stats.timed_out == 1
        # The expired request never reached a worker.
        assert stats.completed == 1 and stats.inflight == 0 and stats.queued == 0

    def test_running_request_times_out_and_result_is_discarded(self, tiny_ssb):
        session = SlowSession(tiny_ssb, delay_s=0.3)

        async def go():
            async with QueryService(session, max_inflight=1, timeout_s=0.05) as service:
                with pytest.raises(QueryTimeoutError) as excinfo:
                    await service.submit(QUERIES["q1.1"])
                # The service is still healthy after the worker unwinds.
                follow_up = await service.submit(QUERIES["q1.2"], timeout=None)
                return excinfo.value, follow_up, service.stats

        error, follow_up, stats = run(go())
        assert error.where == "running"
        assert isinstance(follow_up, ServiceResult)
        assert stats.timed_out == 1 and stats.completed == 1
        assert stats.submitted == stats.settled


class TestLifecycle:
    def test_drain_completes_everything_then_closed_rejects(self, session):
        async def go():
            service = QueryService(session, max_inflight=2, max_queue_depth=32)
            tasks = [
                asyncio.create_task(service.submit(QUERIES[name], class_tag=name))
                for name in QUERY_ORDER[:6]
            ]
            await asyncio.sleep(0)  # let every submit reach its admission point
            await service.close(drain=True)
            results = await asyncio.gather(*tasks)
            with pytest.raises(ServiceClosedError):
                await service.submit(QUERIES["q1.1"])
            return results, service.stats

        results, stats = run(go())
        assert len(results) == 6
        assert stats.completed == 6 and stats.queued == 0 and stats.inflight == 0

    def test_non_drain_close_cancels_the_queue(self, tiny_ssb):
        session = SlowSession(tiny_ssb, delay_s=0.2)

        async def go():
            service = QueryService(session, max_inflight=1, max_queue_depth=8)
            running = asyncio.create_task(service.submit(QUERIES["q1.1"]))
            await asyncio.sleep(0.05)
            queued = [
                asyncio.create_task(service.submit(QUERIES["q2.1"])) for _ in range(3)
            ]
            await asyncio.sleep(0)
            await service.close(drain=False)
            outcome = await asyncio.gather(*queued, return_exceptions=True)
            return await running, outcome, service.stats

        finished, cancelled, stats = run(go())
        assert isinstance(finished, ServiceResult)  # inflight work always completes
        assert all(isinstance(exc, ServiceClosedError) for exc in cancelled)
        assert stats.cancelled == 3 and stats.completed == 1
        assert stats.submitted == stats.settled

    def test_failed_execution_propagates_and_counts(self, session):
        # Prepares fine, blows up in the worker: the column only goes
        # missing once the scan touches the fact table.
        broken = dataclasses.replace(
            QUERIES["q1.1"], name="q_broken", fact_filters=(FilterSpec("lo_nope", "eq", 1),)
        )

        async def go():
            async with QueryService(session) as service:
                with pytest.raises(KeyError, match="lo_nope"):
                    await service.submit(broken)
                ok = await service.submit(QUERIES["q1.1"])
                return ok, service.stats

        ok, stats = run(go())
        assert isinstance(ok, ServiceResult)
        assert stats.completed == 1


class TestTraces:
    def test_trace_records_the_request_lifecycle(self, session):
        async def go():
            async with QueryService(session, max_inflight=1) as service:
                submitted = await service.submit(QUERIES["q2.1"], class_tag="probe")
                return submitted.trace, list(service.traces)

        trace, traces = run(go())
        assert isinstance(trace, RequestTrace)
        assert trace.status == "ok"
        assert trace.class_tag == "probe" and trace.query == "q2.1"
        assert trace.wait_ms is not None and trace.wait_ms >= 0
        assert trace.execute_ms is not None and trace.execute_ms > 0
        assert trace.total_ms >= trace.execute_ms
        assert isinstance(trace.counters, CounterSnapshot)
        assert trace in traces
        record = trace.as_dict()
        assert record["status"] == "ok" and record["class_tag"] == "probe"

    def test_counters_delta_reports_cache_hits(self, tiny_ssb):
        async def go():
            with Session(tiny_ssb) as fresh:
                async with QueryService(fresh, max_inflight=1) as service:
                    first = await service.submit(QUERIES["q4.1"])
                    again = await service.submit(QUERIES["q4.1"])
                    return first.trace, again.trace

        first, again = run(go())
        assert not first.execution_cached  # cold: this request executed
        assert again.execution_cached  # warm: answered from the memo


class SlowIngestSession(Session):
    """A session whose appends stall mid-flight (queries run at full speed).

    Real appends publish in microseconds -- far too fast to catch a timeout
    firing *while* the append runs; the sleep holds the ingest on its
    worker so the mid-append expiry path triggers on command.
    """

    def __init__(self, db, delay_s: float, **kwargs) -> None:
        super().__init__(db, **kwargs)
        self.delay_s = delay_s

    def ingest(self, table, arrays):
        time.sleep(self.delay_s)
        return super().ingest(table, arrays)


class TestIngestTimeouts:
    """Timeouts during ingest: queued expiry vs. mid-append expiry.

    Ingest mutates the database, so each test builds its own small SSB
    instance instead of borrowing the shared fixtures.
    """

    def test_queued_ingest_expires_without_touching_the_table(self):
        from repro.ssb import generate_lineorder_batch, generate_ssb

        db = generate_ssb(scale_factor=0.005, seed=21)
        session = SlowSession(db, delay_s=0.3)  # a query pins the one worker
        batch = generate_lineorder_batch(db, 16, seed=3)

        async def go():
            async with QueryService(session, max_inflight=1) as service:
                running = asyncio.create_task(service.submit(QUERIES["q1.1"], timeout=None))
                await asyncio.sleep(0.05)
                with pytest.raises(QueryTimeoutError) as excinfo:
                    await service.ingest("lineorder", batch, timeout=0.05)
                await running
                return excinfo.value, service.stats

        try:
            error, stats = run(go())
            assert error.where == "queued"
            # The expired append never reached a worker: no version flip,
            # no rows, and the table is bit-for-bit what it was.
            assert db.table("lineorder").version == 0
            assert stats.timed_out == 1 and stats.completed == 1
        finally:
            session.close()

    def test_mid_append_timeout_discards_result_but_publishes(self):
        from repro.ssb import generate_lineorder_batch, generate_ssb

        db = generate_ssb(scale_factor=0.005, seed=22)
        session = SlowIngestSession(db, delay_s=0.3)
        batch = generate_lineorder_batch(db, 16, seed=4)
        rows_before = db.table("lineorder").num_rows

        async def go():
            async with QueryService(session, max_inflight=1) as service:
                with pytest.raises(QueryTimeoutError) as excinfo:
                    await service.ingest("lineorder", batch, timeout=0.05)
                # __aexit__ drains: the worker finishes the append after
                # the caller has already been told "timeout".
                return excinfo.value, service

        try:
            error, service = run(go())
            assert error.where == "running"
            # Pinned semantic: a mid-append timeout is *not* a rollback.
            # The append cannot be interrupted once on a worker -- the
            # version advances and the rows are in; only the caller's
            # result (the IngestResult) is discarded.
            assert db.table("lineorder").version == 1
            assert db.table("lineorder").num_rows == rows_before + 16
            stats = service.stats
            assert stats.timed_out == 1 and stats.completed == 0
            assert service.traces[-1].status == "timeout"
        finally:
            session.close()
