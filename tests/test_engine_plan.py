"""Tests for the shared query executor against brute-force references."""

import numpy as np
import pytest

from repro.engine.expr import evaluate_filter, evaluate_filters, resolve_filter_value
from repro.engine.plan import execute_query
from repro.ssb.queries import QUERIES, FilterSpec
from repro.storage import Table


def _reference_q11(db):
    """Brute-force evaluation of q1.1 with plain NumPy."""
    lo = db["lineorder"]
    date = db["date"]
    year_of = dict(zip(date["d_datekey"].tolist(), date["d_year"].tolist()))
    years = np.array([year_of[d] for d in lo["lo_orderdate"]])
    mask = (
        (lo["lo_discount"] >= 1) & (lo["lo_discount"] <= 3)
        & (lo["lo_quantity"] < 25) & (years == 1993)
    )
    return float(np.sum(lo["lo_extendedprice"][mask].astype(np.float64)
                        * lo["lo_discount"][mask].astype(np.float64)))


def _reference_q21(db):
    """Brute-force evaluation of q2.1 with plain NumPy."""
    lo, supplier, part, date = db["lineorder"], db["supplier"], db["part"], db["date"]
    america = supplier.encode_predicate_value("s_region", "AMERICA")
    mfgr12 = part.encode_predicate_value("p_category", "MFGR#12")
    supplier_ok = np.zeros(supplier.num_rows, dtype=bool)
    supplier_ok[supplier["s_suppkey"][supplier["s_region"] == america]] = True
    part_ok = np.zeros(part.num_rows, dtype=bool)
    part_ok[part["p_partkey"][part["p_category"] == mfgr12]] = True
    brand_of = np.zeros(part.num_rows, dtype=np.int64)
    brand_of[part["p_partkey"]] = part["p_brand1"]
    year_of = dict(zip(date["d_datekey"].tolist(), date["d_year"].tolist()))

    mask = supplier_ok[lo["lo_suppkey"]] & part_ok[lo["lo_partkey"]]
    groups = {}
    for suppkey, partkey, orderdate, revenue, selected in zip(
        lo["lo_suppkey"], lo["lo_partkey"], lo["lo_orderdate"], lo["lo_revenue"], mask
    ):
        if not selected:
            continue
        key = (int(year_of[int(orderdate)]), int(brand_of[partkey]))
        groups[key] = groups.get(key, 0.0) + float(revenue)
    return groups


class TestFilterEvaluation:
    def test_all_operators(self):
        table = Table.from_arrays("t", {"x": np.array([1, 2, 3, 4, 5])})
        assert list(evaluate_filter(table, FilterSpec("x", "eq", 3))) == [False, False, True, False, False]
        assert list(evaluate_filter(table, FilterSpec("x", "ne", 3))) == [True, True, False, True, True]
        assert evaluate_filter(table, FilterSpec("x", "lt", 3)).sum() == 2
        assert evaluate_filter(table, FilterSpec("x", "le", 3)).sum() == 3
        assert evaluate_filter(table, FilterSpec("x", "gt", 3)).sum() == 2
        assert evaluate_filter(table, FilterSpec("x", "ge", 3)).sum() == 3
        assert evaluate_filter(table, FilterSpec("x", "between", (2, 4))).sum() == 3
        assert evaluate_filter(table, FilterSpec("x", "in", (1, 5))).sum() == 2

    def test_unknown_operator(self):
        table = Table.from_arrays("t", {"x": np.arange(3)})
        with pytest.raises(ValueError):
            evaluate_filter(table, FilterSpec("x", "like", 1))

    def test_encoded_value_resolution(self):
        table = Table(name="t")
        table.add_encoded_column("region", ["ASIA", "AMERICA", "EUROPE"])
        spec = FilterSpec("region", "eq", "ASIA", encoded=True)
        assert resolve_filter_value(table, spec) == table.encode_predicate_value("region", "ASIA")
        assert evaluate_filter(table, spec).sum() == 1

    def test_encoded_in_and_between(self):
        table = Table(name="t")
        table.add_encoded_column("brand", ["MFGR#2221", "MFGR#2224", "MFGR#2228", "MFGR#2230"])
        between = FilterSpec("brand", "between", ("MFGR#2221", "MFGR#2228"), encoded=True)
        assert evaluate_filter(table, between).sum() == 3
        member = FilterSpec("brand", "in", ("MFGR#2221", "MFGR#2230"), encoded=True)
        assert evaluate_filter(table, member).sum() == 2

    def test_encoded_without_dictionary_raises(self):
        table = Table.from_arrays("t", {"x": np.arange(3)})
        with pytest.raises(KeyError):
            resolve_filter_value(table, FilterSpec("x", "eq", "A", encoded=True))

    def test_string_constant_on_numeric_column_raises(self):
        """Silent zero-row matches are worse than an error (hand-written specs too)."""
        table = Table.from_arrays("t", {"x": np.arange(5)})
        with pytest.raises(TypeError, match="encoded"):
            evaluate_filter(table, FilterSpec("x", "eq", "three"))
        with pytest.raises(TypeError, match="encoded"):
            evaluate_filter(table, FilterSpec("x", "in", {"a", "b"}))

    def test_evaluate_filters_conjunction(self):
        table = Table.from_arrays("t", {"x": np.arange(10)})
        mask = evaluate_filters(table, [FilterSpec("x", "ge", 3), FilterSpec("x", "lt", 7)])
        assert mask.sum() == 4
        assert evaluate_filters(table, []).all()


class TestExecuteQuery:
    def test_q11_matches_reference(self, tiny_ssb):
        value, profile = execute_query(tiny_ssb, QUERIES["q1.1"])
        assert value == pytest.approx(_reference_q11(tiny_ssb))
        assert profile.num_groups == 1
        assert 0 < profile.fact_filter_selectivity < 1

    def test_q21_matches_reference(self, tiny_ssb):
        value, profile = execute_query(tiny_ssb, QUERIES["q2.1"])
        assert value == _reference_q21(tiny_ssb)
        assert profile.num_groups == len(value)
        assert len(profile.joins) == 3

    def test_profile_join_selectivities(self, tiny_ssb):
        _, profile = execute_query(tiny_ssb, QUERIES["q2.1"])
        supplier_stage = profile.joins[0]
        part_stage = profile.joins[1]
        assert supplier_stage.selectivity == pytest.approx(0.2, abs=0.1)
        assert part_stage.selectivity == pytest.approx(1 / 25, abs=0.03)

    def test_profile_column_access_rule(self, tiny_ssb):
        _, profile = execute_query(tiny_ssb, QUERIES["q2.1"])
        selective = profile.selective_column_bytes(64)
        full = profile.fact_bytes_accessed_full()
        assert selective <= full
        # The first join key is always a full-column scan.
        first_key = next(a for a in profile.column_accesses if a.role == "join_key")
        assert first_key.rows_needed == profile.fact_rows

    def test_group_keys_decode_to_plausible_values(self, tiny_ssb):
        value, _ = execute_query(tiny_ssb, QUERIES["q2.1"])
        years = {key[0] for key in value}
        assert years <= set(range(1992, 1999))

    def test_every_query_executes(self, tiny_ssb):
        for name, query in QUERIES.items():
            value, profile = execute_query(tiny_ssb, query)
            if query.has_group_by:
                assert isinstance(value, dict)
            else:
                assert isinstance(value, float)
            assert profile.fact_rows == tiny_ssb["lineorder"].num_rows

    def test_aggregates_are_non_negative(self, tiny_ssb):
        for name in ("q1.1", "q2.1", "q3.1", "q4.1"):
            value, _ = execute_query(tiny_ssb, QUERIES[name])
            if isinstance(value, dict):
                assert all(v >= 0 for v in value.values())
            else:
                assert value >= 0


class TestNarrowestSignedDtype:
    """Signed-boundary edge cases: the payload dtype picker must not fall
    over exactly where a narrower type stops fitting."""

    def test_int8_boundaries(self):
        from repro.engine.plan import narrowest_signed_dtype

        assert narrowest_signed_dtype(0, 127) == np.int8
        assert narrowest_signed_dtype(0, 128) == np.int16
        assert narrowest_signed_dtype(-128, 127) == np.int8
        assert narrowest_signed_dtype(-129, 0) == np.int16

    def test_int16_boundaries(self):
        from repro.engine.plan import narrowest_signed_dtype

        assert narrowest_signed_dtype(0, 32767) == np.int16
        assert narrowest_signed_dtype(0, 32768) == np.int32
        assert narrowest_signed_dtype(-32768, 32767) == np.int16
        assert narrowest_signed_dtype(-32769, 0) == np.int32

    def test_int32_and_int64_boundaries(self):
        from repro.engine.plan import narrowest_signed_dtype

        assert narrowest_signed_dtype(0, 2**31 - 1) == np.int32
        assert narrowest_signed_dtype(0, 2**31) == np.int64
        assert narrowest_signed_dtype(-(2**63), 2**63 - 1) == np.int64

    def test_negative_lows_drive_widening(self):
        from repro.engine.plan import narrowest_signed_dtype

        # A tiny high does not save a wide negative low.
        assert narrowest_signed_dtype(-1000, 1) == np.int16
        assert narrowest_signed_dtype(-(2**40), 0) == np.int64

    def test_overflow_rejected(self):
        from repro.engine.plan import narrowest_signed_dtype

        with pytest.raises(OverflowError):
            narrowest_signed_dtype(0, 2**63)
        with pytest.raises(OverflowError):
            narrowest_signed_dtype(-(2**63) - 1, 0)


class TestBuildDimensionLookupDtype:
    """The dtype (and layout) build_dimension_lookup actually chooses."""

    def _dimension(self, payload_values):
        payload = np.asarray(payload_values)
        return Table.from_arrays(
            "dim",
            {
                "key": np.arange(payload.shape[0], dtype=np.int32),
                "payload": payload,
            },
        )

    @pytest.mark.parametrize(
        "high, expected",
        [(127, np.int8), (128, np.int16), (32767, np.int16), (32768, np.int32)],
    )
    def test_payload_boundary_dtypes(self, high, expected):
        from repro.engine.plan import build_dimension_lookup

        dim = self._dimension(np.array([0, high], dtype=np.int64))
        lookup, present = build_dimension_lookup(dim, "key", np.ones(2, dtype=bool), "payload")
        assert lookup.dtype == expected
        assert present.all()
        assert lookup[1] == high

    def test_negative_payloads_round_trip(self):
        from repro.engine.plan import build_dimension_lookup

        dim = self._dimension(np.array([-5, -120, 7], dtype=np.int64))
        lookup, present = build_dimension_lookup(dim, "key", np.ones(3, dtype=bool), "payload")
        assert lookup.dtype == np.int8
        np.testing.assert_array_equal(lookup, [-5, -120, 7])

    def test_filtered_values_do_not_widen(self):
        """Only *selected* payload values matter for the dtype."""
        from repro.engine.plan import build_dimension_lookup

        dim = self._dimension(np.array([1, 2, 1_000_000], dtype=np.int64))
        mask = np.array([True, True, False])
        lookup, present = build_dimension_lookup(dim, "key", mask, "payload")
        assert lookup.dtype == np.int8
        assert not present[2]

    def test_no_payload_is_one_byte(self):
        from repro.engine.plan import build_dimension_lookup

        dim = self._dimension(np.array([9, 9, 9], dtype=np.int64))
        lookup, present = build_dimension_lookup(dim, "key", np.ones(3, dtype=bool), None)
        assert lookup.dtype == np.int8

    def test_base_offsets_the_layout(self):
        from repro.engine.plan import build_dimension_lookup

        keys = np.array([1000, 1001, 1005], dtype=np.int32)
        dim = Table.from_arrays(
            "dim", {"key": keys, "payload": np.array([7, 8, 9], dtype=np.int32)}
        )
        dense_lookup, dense_present = build_dimension_lookup(
            dim, "key", np.ones(3, dtype=bool), "payload"
        )
        compact_lookup, compact_present = build_dimension_lookup(
            dim, "key", np.ones(3, dtype=bool), "payload", base=1000
        )
        assert dense_lookup.shape[0] == 1006
        assert compact_lookup.shape[0] == 6
        np.testing.assert_array_equal(
            np.flatnonzero(dense_present), np.flatnonzero(compact_present) + 1000
        )
        np.testing.assert_array_equal(
            dense_lookup[np.flatnonzero(dense_present)],
            compact_lookup[np.flatnonzero(compact_present)],
        )

    def test_empty_dimension_ignores_base(self):
        from repro.engine.plan import build_dimension_lookup

        dim = Table.from_arrays(
            "dim",
            {
                "key": np.array([], dtype=np.int32),
                "payload": np.array([], dtype=np.int32),
            },
        )
        lookup, present = build_dimension_lookup(
            dim, "key", np.zeros(0, dtype=bool), "payload", base=500
        )
        assert lookup.shape == present.shape == (1,)
        assert not present.any()
