"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that ``pip install -e .`` keeps working on environments whose setuptools
lacks PEP 660 editable-wheel support (e.g. offline machines without the
``wheel`` package), via the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
